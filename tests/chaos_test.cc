// Chaos-harness tests: the fault schedule as a pure function of
// (seed, config), domain-kill and gray-degrade semantics through the
// injector, end-to-end determinism of a full chaos run (two identical
// seeds must produce bit-identical completion streams through the
// gateway + autoscaler + injector stack), a sim-vs-realtime cross-check
// of the same schedule, and the kill/cancel-during-model-load
// regressions (aborting a mid-load request whose model is pinned by
// parked same-model waiters must keep the residency for them instead of
// tripping the eviction CHECK).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "autoscale/autoscaler.h"
#include "chaos/fault_injector.h"
#include "cluster/experiment.h"
#include "cluster/realtime_cluster.h"
#include "gateway/gateway.h"
#include "testing/builders.h"
#include "trace/clients.h"

namespace gfaas::chaos {
namespace {

using testkit::make_request;

// ---------------------------------------------------------------------------
// Fault schedule: pure function of (seed, config)
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, PureFunctionOfSeedAndConfig) {
  FaultScheduleConfig config;
  config.seed = 9;
  config.horizon = minutes(90);
  config.domain_kills_per_hour = 2.0;
  config.cold_start_stalls_per_hour = 2.0;
  config.degrades_per_hour = 4.0;

  const std::vector<FaultEvent> a = make_fault_schedule(config);
  const std::vector<FaultEvent> b = make_fault_schedule(config);
  ASSERT_EQ(a.size(), 12u);  // llround(1.5h x {2, 2, 4}) = 3 + 3 + 6
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].domain_ordinal, b[i].domain_ordinal) << i;
    EXPECT_EQ(a[i].cold_start_index, b[i].cold_start_index) << i;
    EXPECT_EQ(a[i].stall, b[i].stall) << i;
    EXPECT_EQ(a[i].degrade_factor, b[i].degrade_factor) << i;
    EXPECT_EQ(a[i].degrade_duration, b[i].degrade_duration) << i;
  }

  std::size_t kills = 0, stalls = 0, degrades = 0;
  for (const FaultEvent& event : a) {
    switch (event.kind) {
      case FaultKind::kKillDomain:
        ++kills;
        EXPECT_GT(event.at, 0);
        EXPECT_LT(event.at, config.horizon);
        break;
      case FaultKind::kStallColdStart:
        ++stalls;
        EXPECT_GE(event.cold_start_index, 0);
        EXPECT_GT(event.stall, 0);
        break;
      case FaultKind::kDegradeDomain:
        ++degrades;
        EXPECT_EQ(event.degrade_factor, config.degrade_factor);
        EXPECT_GT(event.degrade_duration, 0);
        EXPECT_LE(event.degrade_duration, config.max_degrade);
        break;
    }
  }
  EXPECT_EQ(kills, 3u);
  EXPECT_EQ(stalls, 3u);
  EXPECT_EQ(degrades, 6u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), [](const FaultEvent& x,
                                                    const FaultEvent& y) {
    return x.at < y.at;
  }));

  // A different seed moves the events (the schedule is seeded, not fixed).
  config.seed = 10;
  const std::vector<FaultEvent> c = make_fault_schedule(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_diff = any_diff || a[i].at != c[i].at ||
               a[i].domain_ordinal != c[i].domain_ordinal;
  }
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// Injector semantics: kills and gray degrades
// ---------------------------------------------------------------------------

TEST(ChaosInjectorTest, DomainKillRemovesEveryMemberAndGuardsExtinction) {
  auto cluster = testkit::ClusterBuilder().nodes(2).gpus_per_node(2).build();
  ASSERT_EQ(cluster->domain_count(), 2u);

  // Three kill events, all ordinal 0: the first takes out domain 0, the
  // other two would leave the fleet below min_alive_domains and must be
  // skipped, not rerouted onto the survivor.
  std::vector<FaultEvent> schedule;
  for (int i = 0; i < 3; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kKillDomain;
    event.at = sec(1 + i);
    event.domain_ordinal = 0;
    schedule.push_back(event);
  }
  ChaosInjector injector(cluster.get(), schedule, /*min_alive_domains=*/1);
  injector.arm();
  cluster->run_to_completion();

  EXPECT_EQ(injector.counters().domain_kills, 1);
  EXPECT_EQ(injector.counters().kills_skipped, 2);
  EXPECT_EQ(injector.counters().gpus_killed, 2);
  EXPECT_EQ(cluster->engine().schedulable_gpu_count(), 2u);
  for (const GpuId gpu : cluster->domain_gpus(0)) {
    EXPECT_FALSE(cluster->engine().is_registered(gpu));
  }
  for (const GpuId gpu : cluster->domain_gpus(1)) {
    EXPECT_TRUE(cluster->engine().is_registered(gpu));
  }
}

TEST(ChaosInjectorTest, DegradeSlowsExecutionThenHeals) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  ASSERT_EQ(cluster->domain_count(), 1u);

  FaultEvent event;
  event.kind = FaultKind::kDegradeDomain;
  event.at = sec(10);
  event.domain_ordinal = 0;
  event.degrade_factor = 4.0;
  event.degrade_duration = sec(20);  // heals at t = 30s
  ChaosInjector injector(cluster.get(), {event});

  auto& engine = cluster->engine();
  auto& sim = cluster->simulator();
  // Request 0 cold-loads the model while healthy; 1 is a warm hit inside
  // the degrade window; 2 is a warm hit after the heal.
  sim.schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  sim.schedule_at(sec(12), [&] { engine.submit(make_request(1, 0, sec(12))); });
  sim.schedule_at(sec(40), [&] { engine.submit(make_request(2, 0, sec(40))); });
  injector.arm();
  cluster->run_to_completion();

  EXPECT_EQ(injector.counters().degrades, 1);
  EXPECT_EQ(injector.counters().degrades_skipped, 0);
  ASSERT_EQ(engine.completions().size(), 3u);
  auto latency = [&](std::int64_t id) {
    for (const auto& record : engine.completions()) {
      if (record.id.value() == id) return record.completed - record.arrival;
    }
    ADD_FAILURE() << "no completion for " << id;
    return SimTime{0};
  };
  // The degraded warm hit runs exactly factor x the healed warm hit, and
  // the gray part is that the scheduler never saw it coming: both were
  // dispatched immediately off the same healthy estimates.
  EXPECT_EQ(latency(1), 4 * latency(2));
  EXPECT_LT(latency(2), latency(0));  // healed hit beats the cold load
}

// ---------------------------------------------------------------------------
// End-to-end determinism: identical seeds, bit-identical completions
// ---------------------------------------------------------------------------

std::uint64_t mix_records(const std::vector<core::CompletionRecord>& records,
                          std::uint64_t hash) {
  auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  for (const auto& r : records) {
    mix(static_cast<std::uint64_t>(r.id.value()));
    mix(static_cast<std::uint64_t>(r.gpu.value()));
    mix(static_cast<std::uint64_t>(r.arrival));
    mix(static_cast<std::uint64_t>(r.dispatched));
    mix(static_cast<std::uint64_t>(r.completed));
    mix((r.cache_hit ? 1u : 0u) | (r.failed ? 2u : 0u));
  }
  return hash;
}

// One full chaos run — gateway (retry + hedging), reactive autoscaler,
// injector (kills + degrades) — digested down to a single hash over the
// completion and failure streams plus the serving counters.
std::uint64_t chaos_run_digest(std::uint64_t chaos_seed) {
  auto cluster =
      testkit::ClusterBuilder().nodes(2).gpus_per_node(2).models(6).build();

  gateway::GatewayConfig gw_config;
  gw_config.max_in_flight = 64;
  gw_config.default_slo = sec(10);
  gw_config.max_retries = 2;
  gw_config.hedge_budget_fraction = 0.2;
  gateway::Gateway gateway(cluster.get(), gw_config);

  autoscale::AutoscalerConfig as_config;
  as_config.evaluation_interval = sec(5);
  as_config.cold_start = sec(10);
  as_config.min_gpus = 4;
  as_config.max_gpus = 6;
  autoscale::Autoscaler scaler(cluster.get(),
                               std::make_unique<autoscale::ReactivePolicy>(),
                               as_config);

  FaultScheduleConfig fault_config;
  fault_config.seed = chaos_seed;
  fault_config.horizon = minutes(4);
  fault_config.domain_kills_per_hour = 15.0;  // 1 kill over the window
  fault_config.degrades_per_hour = 30.0;      // 2 degrades
  fault_config.degrade_factor = 6.0;
  fault_config.max_degrade = minutes(1);
  ChaosInjector injector(cluster.get(), make_fault_schedule(fault_config));

  trace::ClientConfig client_config;
  client_config.model_count = 6;
  trace::ClientSink sink = [&gateway](core::Request request,
                                      std::function<void()> done) {
    gateway.submit(std::move(request),
                   [done = std::move(done)](const gateway::GatewayResult&) {
                     done();
                   });
  };
  trace::OpenLoopClient client(&cluster->executor(), sink, client_config,
                               {90, 90, 90, 90});

  client.start();
  scaler.start(client.horizon());
  injector.arm();
  cluster->run_to_completion();
  scaler.finalize();

  EXPECT_EQ(client.completed(), client.submitted());
  EXPECT_EQ(cluster->engine().pending(), 0u);

  std::uint64_t hash = 0xcbf29ce484222325ull;
  hash = mix_records(cluster->engine().completions(), hash);
  hash = mix_records(cluster->engine().failures(), hash);
  const gateway::GatewayCounters& counters = gateway.counters();
  for (std::int64_t v :
       {counters.submitted, counters.completed, counters.failed,
        counters.retries, counters.hedges, counters.hedge_wins,
        injector.counters().domain_kills, injector.counters().degrades}) {
    hash = hash * 0x100000001b3ull + static_cast<std::uint64_t>(v);
  }
  return hash;
}

TEST(ChaosDeterminismTest, IdenticalSeedsBitIdenticalCompletions) {
  EXPECT_EQ(chaos_run_digest(5), chaos_run_digest(5));
  EXPECT_NE(chaos_run_digest(5), chaos_run_digest(6));
}

// ---------------------------------------------------------------------------
// Sim vs realtime: the same schedule replays on both executors
// ---------------------------------------------------------------------------

struct CrossCheckOutcome {
  std::size_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t kills = 0;
  std::int64_t degrades = 0;
};

CrossCheckOutcome run_chaos_stack(cluster::ElasticCluster& cluster) {
  gateway::GatewayConfig gw_config;
  gw_config.max_in_flight = 64;
  gw_config.default_slo = sec(30);
  gw_config.max_retries = 2;
  gateway::Gateway gateway(&cluster, gw_config);

  FaultScheduleConfig fault_config;
  fault_config.seed = 11;
  fault_config.horizon = minutes(2);
  fault_config.domain_kills_per_hour = 30.0;  // 1 kill over the window
  fault_config.degrades_per_hour = 30.0;      // 1 degrade
  fault_config.degrade_factor = 4.0;
  fault_config.max_degrade = minutes(1);
  ChaosInjector injector(&cluster, make_fault_schedule(fault_config));

  trace::ClientConfig client_config;
  client_config.model_count = 4;
  trace::ClientSink sink = [&gateway](core::Request request,
                                      std::function<void()> done) {
    gateway.submit(std::move(request),
                   [done = std::move(done)](const gateway::GatewayResult&) {
                     done();
                   });
  };
  trace::OpenLoopClient client(&cluster.executor(), sink, client_config,
                               {60, 60});

  client.start();
  injector.arm();
  cluster.run_to_completion();

  CrossCheckOutcome outcome;
  outcome.submitted = client.submitted();
  outcome.completed = gateway.counters().completed;
  outcome.kills = injector.counters().domain_kills;
  outcome.degrades = injector.counters().degrades;
  return outcome;
}

TEST(ChaosDeterminismTest, SimVsRealtimeCrossCheck) {
  const models::ModelRegistry registry = testkit::head_registry(4);
  cluster::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;

  cluster::SimCluster sim_cluster(config, registry);
  const CrossCheckOutcome sim_outcome = run_chaos_stack(sim_cluster);

  // 240x compression: the 2-minute trace replays in ~0.5s of wall time.
  // Event interleavings drift under real scheduling, so the cross-check
  // asserts the loose invariants — the schedule fires identically and
  // retry absorbs the kill in both modes — not timestamp equality.
  cluster::RealTimeCluster rt_cluster(config, registry, /*time_scale=*/240.0);
  const CrossCheckOutcome rt_outcome = run_chaos_stack(rt_cluster);

  EXPECT_EQ(sim_outcome.submitted, rt_outcome.submitted);
  EXPECT_EQ(sim_outcome.kills, rt_outcome.kills);
  EXPECT_EQ(sim_outcome.degrades, rt_outcome.degrades);
  EXPECT_GT(sim_outcome.kills, 0);
  EXPECT_EQ(sim_outcome.completed,
            static_cast<std::int64_t>(sim_outcome.submitted));
  EXPECT_EQ(rt_outcome.completed,
            static_cast<std::int64_t>(rt_outcome.submitted));
}

// ---------------------------------------------------------------------------
// Kill / cancel during model load (regression)
// ---------------------------------------------------------------------------

// Aborting a mid-load request whose model is pinned by parked same-model
// waiters used to CHECK-fail in the eviction path (the abort tried to
// evict an entry the waiters still pin). The fix keeps the residency for
// them and re-uploads on dispatch; this is the exact crash scenario.
TEST(KillDuringLoadTest, CancelMidLoadKeepsResidencyForPinnedWaiters) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  auto& engine = cluster->engine();
  auto& sim = cluster->simulator();

  core::Request first = make_request(0, 0, 0);
  const auto victim_id = first.id;
  sim.schedule_at(0, [&, first] { engine.submit(first); });
  GpuId loader;
  sim.schedule_at(msec(2000), [&] {
    // Still inside the ~2.4s cold load; the residual wait beats a fresh
    // load, so LALB parks the same-model requests with pins.
    const auto busy = engine.busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    loader = busy[0];
    engine.submit(make_request(1, 0, msec(2000)));
    ASSERT_EQ(engine.local_queues().size(loader), 1u)
        << "expected LALB to park the same-model request behind the load";
  });
  sim.schedule_at(msec(2100), [&] {
    ASSERT_FALSE(engine.is_idle(loader));
    EXPECT_TRUE(engine.cancel_request(victim_id));
  });
  cluster->run_to_completion();

  // The waiter completed on the kept-resident model; nothing leaked.
  EXPECT_EQ(engine.completions().size(), 1u);
  EXPECT_EQ(engine.failures().size(), 0u);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.cancellations(), 1);
  EXPECT_GT(engine.cancelled_execution_time(), 0);
  for (const GpuId gpu : engine.idle_gpus()) {
    EXPECT_FALSE(cluster->cache().state(gpu).any_pinned());
  }
}

TEST(KillDuringLoadTest, KillGpuMidLoadRequeuesPinnedWaiters) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  auto& engine = cluster->engine();
  auto& sim = cluster->simulator();

  sim.schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  GpuId loader;
  sim.schedule_at(msec(2000), [&] {
    const auto busy = engine.busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    loader = busy[0];
    engine.submit(make_request(1, 0, msec(2000)));
    ASSERT_EQ(engine.local_queues().size(loader), 1u);
  });
  sim.schedule_at(msec(2100), [&] {
    ASSERT_FALSE(engine.is_idle(loader));
    cluster->kill_gpu(loader);
  });
  cluster->run_to_completion();

  // The in-flight load died with its GPU; the parked waiter was
  // requeued and served by the survivor.
  ASSERT_EQ(engine.failures().size(), 1u);
  EXPECT_EQ(engine.failures()[0].gpu, loader);
  EXPECT_EQ(engine.completions().size(), 1u);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.schedulable_gpu_count(), 1u);
  EXPECT_FALSE(cluster->cache().is_registered(loader));
  for (const GpuId gpu : engine.idle_gpus()) {
    EXPECT_FALSE(cluster->cache().state(gpu).any_pinned());
  }
}

}  // namespace
}  // namespace gfaas::chaos
