// Negative-compile probe for the shard router's membership contract:
// reading the consistent-hash ring (the guarded membership table) without
// holding mu_ must fail thread-safety analysis — route() on producer
// threads races set_weight() from autoscaler hooks otherwise. Reverting
// the GUARDED_BY on ShardRouter::ring_ (or the friend seam) makes this
// file compile — and the WILL_FAIL ctest entry catch it.
#include <cstddef>

#include "shard/router.h"

namespace gfaas::shard {

class ThreadSafetyProbe {
 public:
  // BUG: reads ShardRouter::ring_ without mu_.
  static std::size_t unguarded_ring_size(const ShardRouter& router) {
    return router.ring_.size();
  }
};

}  // namespace gfaas::shard

int main() {
  return 0;
}
