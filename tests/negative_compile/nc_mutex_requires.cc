// Negative-compile probe: calling a REQUIRES(mu_) function without holding
// the mutex must fail Clang thread-safety analysis ("calling function
// 'unsafe_add' requires holding mutex 'mu_' exclusively").
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void add(int n) {  // BUG: calls the REQUIRES helper with mu_ unheld
    unsafe_add(n);
  }

 private:
  void unsafe_add(int n) REQUIRES(mu_) { value_ += n; }

  gfaas::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
