// Negative-compile probe: returning with the mutex still locked must fail
// Clang thread-safety analysis ("mutex 'mu' is still held at the end of
// function").
#include "common/thread_annotations.h"

int main() {
  gfaas::common::Mutex mu;
  mu.lock();  // BUG: never unlocked
  return 0;
}
