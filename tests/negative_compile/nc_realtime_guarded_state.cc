// Negative-compile probe for the RealTimeExecutor's lock contract: reading
// a member GUARDED_BY(mu_) without holding the mutex must fail
// thread-safety analysis. Reverting the GUARDED_BY on
// RealTimeExecutor::stop_ (or the friend seam) makes this file compile —
// and the WILL_FAIL ctest entry catch it.
#include "cluster/realtime.h"

namespace gfaas::cluster {

class ThreadSafetyProbe {
 public:
  // BUG: reads RealTimeExecutor::stop_ without taking mu_.
  static bool unguarded_stop(const RealTimeExecutor& executor) {
    return executor.stop_;
  }
};

}  // namespace gfaas::cluster

int main() {
  return 0;
}
