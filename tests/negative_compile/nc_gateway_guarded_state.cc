// Negative-compile probe for the Gateway's serving-state contract: reading
// a member GUARDED_BY(serial_) without the executor-affinity capability
// must fail thread-safety analysis. Reverting the GUARDED_BY on
// Gateway::in_flight_ (or the friend seam) makes this file compile — and
// the WILL_FAIL ctest entry catch it.
#include <cstddef>

#include "gateway/gateway.h"

namespace gfaas::gateway {

class ThreadSafetyProbe {
 public:
  // BUG: reads Gateway::in_flight_ without serial_.AssertHeld().
  static std::size_t unguarded_in_flight(const Gateway& gateway) {
    return gateway.in_flight_;
  }
};

}  // namespace gfaas::gateway

int main() {
  return 0;
}
