// Negative-compile probe: writing a GUARDED_BY member without taking the
// mutex must fail Clang thread-safety analysis ("writing variable 'value_'
// requires holding mutex 'mu_' exclusively"). Registered in CMake as a
// WILL_FAIL build test; if this file ever compiles, the Mutex/GUARDED_BY
// plumbing in common/thread_annotations.h has been broken.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void increment() {  // BUG: touches value_ with mu_ unheld
    ++value_;
  }

 private:
  gfaas::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.increment();
  return 0;
}
