// Tests for the trace pipeline: synthesizer calibration against the
// paper's reported workload statistics, CSV round-tripping, ranking, and
// the workload builder's normalization / mapping / arrival rules.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "trace/azure_trace.h"
#include "trace/workload.h"

namespace gfaas::trace {
namespace {

TEST(SynthesizerTest, ShapeMatchesConfig) {
  SynthesizerConfig config;
  config.num_functions = 500;
  config.minutes = 4;
  const AzureTrace trace = synthesize_azure_trace(config);
  EXPECT_EQ(trace.rows.size(), 500u);
  EXPECT_EQ(trace.minutes, 4);
  for (const auto& row : trace.rows) {
    EXPECT_EQ(row.per_minute.size(), 4u);
  }
}

TEST(SynthesizerTest, Top15CarriesCalibratedShare) {
  // The paper's statistic: top-15 functions carry ~56% of invocations.
  SynthesizerConfig config;
  const AzureTrace trace = synthesize_azure_trace(config);
  EXPECT_NEAR(trace.head_share(15, config.minutes), 0.56, 0.03);
}

TEST(SynthesizerTest, DeepTailFunctionsBelowPaperThreshold) {
  SynthesizerConfig config;
  const AzureTrace trace = synthesize_azure_trace(config);
  const auto ranking = trace.rank_by_popularity(config.minutes);
  // Far-tail functions each carry < 0.01% of per-minute invocations.
  const std::size_t deep = ranking[ranking.size() - 10];
  std::int64_t tail_total = 0, total = 0;
  for (std::int64_t m = 0; m < config.minutes; ++m) {
    tail_total += trace.rows[deep].per_minute[static_cast<std::size_t>(m)];
    total += trace.total_in_minute(m);
  }
  EXPECT_LT(static_cast<double>(tail_total) / static_cast<double>(total), 0.0001);
}

TEST(SynthesizerTest, DeterministicPerSeed) {
  SynthesizerConfig config;
  config.num_functions = 100;
  const AzureTrace a = synthesize_azure_trace(config);
  const AzureTrace b = synthesize_azure_trace(config);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].per_minute, b.rows[i].per_minute);
  }
  config.seed = 99;
  const AzureTrace c = synthesize_azure_trace(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.rows.size() && !any_diff; ++i) {
    any_diff = a.rows[i].per_minute != c.rows[i].per_minute;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceCsvTest, RoundTrips) {
  SynthesizerConfig config;
  config.num_functions = 50;
  config.minutes = 3;
  const AzureTrace trace = synthesize_azure_trace(config);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace_csv(trace, buffer).ok());
  auto read_back = read_trace_csv(buffer);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->minutes, 3);
  ASSERT_EQ(read_back->rows.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(read_back->rows[i].function_hash, trace.rows[i].function_hash);
    EXPECT_EQ(read_back->rows[i].per_minute, trace.rows[i].per_minute);
  }
}

TEST(TraceCsvTest, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_FALSE(read_trace_csv(empty).ok());
  std::stringstream no_minutes("function\n");
  EXPECT_FALSE(read_trace_csv(no_minutes).ok());
  std::stringstream ragged("function,m0,m1\nfn0,1\n");
  EXPECT_FALSE(read_trace_csv(ragged).ok());
}

TEST(TraceRankingTest, MostPopularFirst) {
  AzureTrace trace;
  trace.minutes = 2;
  trace.rows = {{"a", {1, 1}}, {"b", {50, 50}}, {"c", {10, 10}}};
  const auto ranking = trace.rank_by_popularity(2);
  EXPECT_EQ(ranking, (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(trace.total_in_minute(0), 61);
  EXPECT_NEAR(trace.head_share(1, 2), 50.0 / 61.0, 1e-9);
}

class WorkloadBuilderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadBuilderTest, PaperNormalizationRules) {
  WorkloadConfig config;
  config.working_set_size = GetParam();
  auto workload = build_standard_workload(config);
  ASSERT_TRUE(workload.ok());

  // 6 minutes x 325 requests, exactly.
  EXPECT_EQ(workload->requests.size(), 6u * 325u);
  // One distinct registered model (cache item) per working-set function.
  EXPECT_EQ(workload->registry.size(), GetParam());

  // Each minute holds exactly 325 arrivals, in sorted order.
  std::vector<std::int64_t> per_minute(6, 0);
  SimTime prev = 0;
  std::set<std::int64_t> models_seen;
  for (const auto& req : workload->requests) {
    EXPECT_GE(req.arrival, prev);
    prev = req.arrival;
    EXPECT_EQ(req.batch, 32);
    ASSERT_LT(req.arrival, minutes(6));
    ++per_minute[static_cast<std::size_t>(req.arrival / minutes(1))];
    models_seen.insert(req.model.value());
    EXPECT_LT(req.model.value(), static_cast<std::int64_t>(GetParam()));
  }
  for (std::int64_t count : per_minute) EXPECT_EQ(count, 325);
  // The head of the working set must actually receive traffic.
  EXPECT_GE(models_seen.size(), std::min<std::size_t>(GetParam(), 15u));

  // The top model is the most invoked.
  EXPECT_TRUE(workload->top_model.valid());
  EXPECT_GT(workload->invocations_of_top_model, 0);
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, WorkloadBuilderTest,
                         ::testing::Values(15u, 25u, 35u));

TEST(WorkloadBuilderTest, SizesSpreadAcrossWorkingSet) {
  WorkloadConfig config;
  config.working_set_size = 15;
  auto workload = build_standard_workload(config);
  ASSERT_TRUE(workload.ok());
  // The size-interleaved mapping must mix small and large models in the
  // popular head (first five functions span a wide size range).
  Bytes smallest = GiB(100), largest = 0;
  for (std::int64_t k = 0; k < 5; ++k) {
    const Bytes occupation = workload->registry.get(ModelId(k))->occupation;
    smallest = std::min(smallest, occupation);
    largest = std::max(largest, occupation);
  }
  EXPECT_LT(smallest, MB(1600));
  EXPECT_GT(largest, MB(3000));
}

TEST(WorkloadBuilderTest, CatalogReuseBeyond22Models) {
  WorkloadConfig config;
  config.working_set_size = 35;
  auto workload = build_standard_workload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->registry.size(), 35u);
  // Entries beyond the catalog get disambiguated names and stay distinct
  // cache items.
  const auto reused = workload->registry.get(ModelId(25));
  ASSERT_TRUE(reused.ok());
  EXPECT_NE(reused->name.find('#'), std::string::npos);
}

TEST(WorkloadBuilderTest, ValidationErrors) {
  WorkloadConfig config;
  config.working_set_size = 0;
  EXPECT_FALSE(build_standard_workload(config).ok());

  AzureTrace tiny;
  tiny.minutes = 2;
  tiny.rows = {{"a", {1, 1}}};
  WorkloadConfig needs_more;
  needs_more.working_set_size = 5;
  EXPECT_FALSE(build_workload(tiny, needs_more).ok());

  WorkloadConfig long_window;
  long_window.working_set_size = 1;
  long_window.window_minutes = 10;
  EXPECT_FALSE(build_workload(tiny, long_window).ok());
}

class ArrivalProcessTest : public ::testing::TestWithParam<ArrivalProcess> {};

TEST_P(ArrivalProcessTest, PreservesPerMinuteTotalsAndBounds) {
  WorkloadConfig config;
  config.working_set_size = 15;
  config.window_minutes = 3;
  config.arrivals = GetParam();
  auto workload = build_standard_workload(config);
  ASSERT_TRUE(workload.ok());
  std::vector<std::int64_t> per_minute(3, 0);
  for (const auto& req : workload->requests) {
    ASSERT_GE(req.arrival, 0);
    ASSERT_LT(req.arrival, minutes(3));
    ++per_minute[static_cast<std::size_t>(req.arrival / minutes(1))];
  }
  for (std::int64_t count : per_minute) EXPECT_EQ(count, 325);
}

TEST_P(ArrivalProcessTest, ArrivalsSorted) {
  WorkloadConfig config;
  config.working_set_size = 15;
  config.window_minutes = 2;
  config.arrivals = GetParam();
  auto workload = build_standard_workload(config);
  ASSERT_TRUE(workload.ok());
  for (std::size_t i = 1; i < workload->requests.size(); ++i) {
    EXPECT_LE(workload->requests[i - 1].arrival, workload->requests[i].arrival);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProcesses, ArrivalProcessTest,
                         ::testing::Values(ArrivalProcess::kUniform,
                                           ArrivalProcess::kPoisson,
                                           ArrivalProcess::kBursty),
                         [](const ::testing::TestParamInfo<ArrivalProcess>& info) {
                           return arrival_process_name(info.param);
                         });

TEST(ArrivalProcessTest, BurstyClustersArrivals) {
  // Bursty arrivals concentrate in a few 2-second windows: the busiest
  // 10 seconds of a minute must carry far more than uniform's ~1/6 share.
  WorkloadConfig uniform_config, bursty_config;
  uniform_config.working_set_size = bursty_config.working_set_size = 15;
  uniform_config.window_minutes = bursty_config.window_minutes = 1;
  bursty_config.arrivals = ArrivalProcess::kBursty;
  auto uniform = build_standard_workload(uniform_config);
  auto bursty = build_standard_workload(bursty_config);
  ASSERT_TRUE(uniform.ok() && bursty.ok());
  auto max_decile = [](const Workload& w) {
    std::vector<int> deciles(6, 0);
    for (const auto& req : w.requests) {
      ++deciles[static_cast<std::size_t>(req.arrival / sec(10))];
    }
    return *std::max_element(deciles.begin(), deciles.end());
  };
  // ~325/4 requests per 2s burst vs ~54 per 10s decile under uniform.
  EXPECT_GT(max_decile(*bursty), max_decile(*uniform) * 3 / 2);
}

TEST(WorkloadBuilderTest, DeterministicFromSeeds) {
  WorkloadConfig config;
  config.working_set_size = 15;
  auto a = build_standard_workload(config);
  auto b = build_standard_workload(config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->requests.size(), b->requests.size());
  for (std::size_t i = 0; i < a->requests.size(); ++i) {
    EXPECT_EQ(a->requests[i].arrival, b->requests[i].arrival);
    EXPECT_EQ(a->requests[i].model, b->requests[i].model);
  }
}

}  // namespace
}  // namespace gfaas::trace
