// Unit tests for the discrete-event simulator: ordering, FIFO tie-breaks,
// cancellation, run_until semantics, nested scheduling, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace gfaas::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 150);
}

TEST(SimulatorTest, NestedSchedulingChains) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(10, chain);
  };
  sim.schedule_after(10, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelUnknownOrTwiceFails) {
  Simulator sim;
  const auto id = sim.schedule_at(10, [] {});
  EXPECT_FALSE(sim.cancel(9999));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
}

TEST(SimulatorTest, CancelAfterExecutionFails) {
  Simulator sim;
  const auto id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(10, [&] { fired.push_back(10); });
  sim.schedule_at(20, [&] { fired.push_back(20); });
  sim.schedule_at(30, [&] { fired.push_back(30); });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulatorTest, StepRunsSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1, [] {});
  const auto id = sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at((i * 7) % 13, [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulatorTest, ExecutorInterfaceWorksPolymorphically) {
  Simulator sim;
  Executor& exec = sim;
  bool ran = false;
  exec.schedule_after(5, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(static_cast<const Clock&>(sim).now(), 5);
}

}  // namespace
}  // namespace gfaas::sim
