// Unit tests for the discrete-event simulator: ordering, FIFO tie-breaks,
// cancellation, run_until semantics, nested scheduling, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace gfaas::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 150);
}

TEST(SimulatorTest, NestedSchedulingChains) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(10, chain);
  };
  sim.schedule_after(10, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelUnknownOrTwiceFails) {
  Simulator sim;
  const auto id = sim.schedule_at(10, [] {});
  EXPECT_FALSE(sim.cancel(9999));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
}

TEST(SimulatorTest, CancelAfterExecutionFails) {
  Simulator sim;
  const auto id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(10, [&] { fired.push_back(10); });
  sim.schedule_at(20, [&] { fired.push_back(20); });
  sim.schedule_at(30, [&] { fired.push_back(30); });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulatorTest, StepRunsSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1, [] {});
  const auto id = sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
}

TEST(SimulatorTest, CancelFromInsideSameTimestampEvent) {
  // An event may cancel a later event scheduled at the SAME timestamp;
  // the victim is already in the heap, so this exercises the lazy
  // tombstone path inside the currently-running time step.
  Simulator sim;
  bool victim_ran = false;
  std::uint64_t victim = 0;
  sim.schedule_at(10, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  victim = sim.schedule_at(10, [&] { victim_ran = true; });
  sim.schedule_at(10, [&] {});  // a live event after the victim still runs
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelOwnFollowupFromEarlierTime) {
  // Cancelling from strictly earlier simulated time: the victim never
  // reaches the head of the queue alive.
  Simulator sim;
  int fired = 0;
  const auto victim = sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(10, [&] {
    EXPECT_TRUE(sim.cancel(victim));
    EXPECT_FALSE(sim.cancel(victim));  // double cancel still fails
  });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, RunUntilDoesNotRunPastDeadlineOverCancelledHead) {
  // Regression: a cancelled tombstone inside the deadline must not pull a
  // live event from beyond the deadline into run_until().
  Simulator sim;
  bool late_ran = false;
  const auto head = sim.schedule_at(5, [] {});
  sim.schedule_at(50, [&] { late_ran = true; });
  EXPECT_TRUE(sim.cancel(head));
  EXPECT_EQ(sim.run_until(10), 0u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), 10);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(late_ran);
}

TEST(SimulatorTest, PendingEventsAccurateThroughMixedCancelAndRun) {
  Simulator sim;
  std::vector<std::uint64_t> ids;
  for (int i = 1; i <= 6; ++i) {
    ids.push_back(sim.schedule_at(i * 10, [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 6u);
  EXPECT_TRUE(sim.cancel(ids[1]));
  EXPECT_TRUE(sim.cancel(ids[4]));
  EXPECT_EQ(sim.pending_events(), 4u);
  EXPECT_TRUE(sim.step());  // runs t=10
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_TRUE(sim.step());  // skips cancelled t=20, runs t=30
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_FALSE(sim.cancel(ids[0]));  // already ran
  EXPECT_EQ(sim.run_until(40), 1u);
  EXPECT_EQ(sim.pending_events(), 1u);  // t=50 cancelled, t=60 live
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 4u);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at((i * 7) % 13, [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulatorTest, ExecutorInterfaceWorksPolymorphically) {
  Simulator sim;
  Executor& exec = sim;
  bool ran = false;
  exec.schedule_after(5, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(static_cast<const Clock&>(sim).now(), 5);
}

}  // namespace
}  // namespace gfaas::sim
