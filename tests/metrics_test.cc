// Unit tests for metrics: Welford statistics (against naive reference),
// merge correctness, histogram quantiles, time-weighted averages, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "metrics/reporter.h"
#include "metrics/stats.h"

namespace gfaas::metrics {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStatsTest, MatchesNaiveComputation) {
  Rng rng(5);
  std::vector<double> values;
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-50, 150);
    values.push_back(v);
    s.add(v);
  }
  double sum = 0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double ss = 0;
  for (double v : values) ss += (v - mean) * (v - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), ss / static_cast<double>(values.size()), 1e-6);
  EXPECT_NEAR(s.sample_variance(), ss / static_cast<double>(values.size() - 1), 1e-6);
  EXPECT_NEAR(s.stddev(), std::sqrt(s.variance()), 1e-12);
}

TEST(StreamingStatsTest, MergeEqualsSequential) {
  Rng rng(6);
  StreamingStats whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3, 2);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1);
  a.add(2);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(StreamingStatsTest, ResetClears) {
  StreamingStats s;
  s.add(9);
  s.reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(HistogramTest, QuantilesOfUniformData) {
  Histogram h(1.0, 1e7);
  for (int i = 1; i <= 10000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10000);
  EXPECT_NEAR(h.p50(), 5000, 5000 * 0.06);
  EXPECT_NEAR(h.p99(), 9900, 9900 * 0.06);
  EXPECT_NEAR(h.quantile(0.1), 1000, 1000 * 0.08);
}

TEST(HistogramTest, SingleValueQuantile) {
  Histogram h;
  h.add(12345.0);
  EXPECT_NEAR(h.p50(), 12345.0, 12345.0 * 0.05);
  EXPECT_NEAR(h.p99(), 12345.0, 12345.0 * 0.05);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(10.0, 1000.0);
  h.add(0.001);   // below range
  h.add(1e9);     // above range
  EXPECT_EQ(h.count(), 2);
  EXPECT_GT(h.quantile(0.9), h.quantile(0.1));
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a(1, 1e6), b(1, 1e6);
  for (int i = 0; i < 100; ++i) a.add(100);
  for (int i = 0; i < 100; ++i) b.add(10000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200);
  const double median = a.quantile(0.5);
  EXPECT_GT(median, 50);
  EXPECT_LT(median, 20000);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST(TimeWeightedAverageTest, ConstantSignal) {
  TimeWeightedAverage twa(3.0);
  EXPECT_DOUBLE_EQ(twa.average(100), 3.0);
}

TEST(TimeWeightedAverageTest, StepSignal) {
  TimeWeightedAverage twa(0.0);
  twa.set(50, 1.0);  // 0 for [0,50), 1 for [50,100)
  EXPECT_DOUBLE_EQ(twa.average(100), 0.5);
}

TEST(TimeWeightedAverageTest, MultipleSteps) {
  TimeWeightedAverage twa(2.0);
  twa.set(10, 4.0);
  twa.set(30, 0.0);
  // [0,10): 2 -> 20; [10,30): 4 -> 80; [30,50): 0 -> 0; total 100 / 50.
  EXPECT_DOUBLE_EQ(twa.average(50), 2.0);
  EXPECT_DOUBLE_EQ(twa.current(), 0.0);
}

TEST(TimeWeightedAverageTest, AverageAtZeroReturnsCurrent) {
  TimeWeightedAverage twa(7.0);
  EXPECT_DOUBLE_EQ(twa.average(0), 7.0);
}

TEST(TableTest, AlignsColumnsAndRendersCsv) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string text = t.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\na,1\nlong-name,22\n");
}

TEST(TableTest, NumericFormatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_percent(0.1234), "12.3%");
}

}  // namespace
}  // namespace gfaas::metrics
