// Elastic-fleet tests: dynamic GPU membership invariants in
// ClusterStateIndex and CacheManager (add/fence/remove mid-run), the
// engine's drain/cold-start semantics, the scaling policies, the
// Autoscaler end-to-end, and the determinism guard asserting the paper
// grid is bit-identical with the autoscaler disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "autoscale/autoscaler.h"
#include "cache/cache_manager.h"
#include "cluster/cluster_state_index.h"
#include "common/rng.h"
#include "metrics/fleet.h"
#include "testing/builders.h"
#include "trace/workload.h"

namespace gfaas::autoscale {
namespace {

using cluster::ClusterStateIndex;
using testkit::head_registry;
using testkit::make_request;

// ---------------------------------------------------------------------------
// ClusterStateIndex membership
// ---------------------------------------------------------------------------

TEST(ClusterStateIndexTest, FenceRemovesFromIdleEnumeration) {
  ClusterStateIndex index;
  for (int i = 0; i < 3; ++i) index.add_gpu(GpuId(i));
  EXPECT_EQ(index.schedulable_count(), 3u);
  index.fence(GpuId(1));
  EXPECT_EQ(index.schedulable_count(), 2u);
  EXPECT_TRUE(index.is_fenced(GpuId(1)));
  EXPECT_TRUE(index.is_idle(GpuId(1)));  // physically idle, just fenced
  const auto idle = index.idle_gpus();
  EXPECT_EQ(idle.size(), 2u);
  EXPECT_TRUE(std::find(idle.begin(), idle.end(), GpuId(1)) == idle.end());
  index.unfence(GpuId(1));
  EXPECT_EQ(index.idle_gpus().size(), 3u);
}

TEST(ClusterStateIndexTest, RemoveRetiresIdAndRejectsLookups) {
  ClusterStateIndex index;
  index.add_gpu(GpuId(0));
  index.add_gpu(GpuId(1));
  index.fence(GpuId(0));
  index.remove_gpu(GpuId(0));
  EXPECT_FALSE(index.is_registered(GpuId(0)));
  EXPECT_TRUE(index.is_registered(GpuId(1)));
  EXPECT_EQ(index.gpu_count(), 2u);  // ids stay reserved
  EXPECT_EQ(index.schedulable_count(), 1u);
  EXPECT_EQ(index.idle_gpus().size(), 1u);
  // New GPUs keep dense numbering after a removal.
  index.add_gpu(GpuId(2));
  EXPECT_EQ(index.idle_gpus().size(), 2u);
  EXPECT_DEATH(index.mark_busy(GpuId(0)), "removed");
}

TEST(ClusterStateIndexTest, RemoveBeforeDrainDies) {
  ClusterStateIndex index;
  index.add_gpu(GpuId(0));
  EXPECT_DEATH(index.remove_gpu(GpuId(0)), "fenced");
  index.fence(GpuId(0));
  index.mark_busy(GpuId(0));
  EXPECT_DEATH(index.remove_gpu(GpuId(0)), "drain");
}

TEST(ClusterStateIndexTest, ServiceableTracksIdleLocalWorkInFrequencyOrder) {
  ClusterStateIndex index;
  for (int i = 0; i < 3; ++i) index.add_gpu(GpuId(i));
  EXPECT_FALSE(index.first_idle_with_local_work().valid());

  // gpu2 is hottest (2 dispatches), gpu1 has 1, gpu0 none.
  for (GpuId gpu : {GpuId(2), GpuId(2), GpuId(1)}) index.record_dispatch(gpu);
  index.add_local_request(GpuId(1));
  index.add_local_request(GpuId(2));
  EXPECT_EQ(index.first_idle_with_local_work(), GpuId(2));  // most dispatched

  index.mark_busy(GpuId(2));  // busy GPUs are not serviceable
  EXPECT_EQ(index.first_idle_with_local_work(), GpuId(1));
  index.fence(GpuId(1));  // fenced GPUs are not serviceable
  EXPECT_FALSE(index.first_idle_with_local_work().valid());
  index.unfence(GpuId(1));
  EXPECT_EQ(index.first_idle_with_local_work(), GpuId(1));
  index.pop_local_request(GpuId(1));
  EXPECT_FALSE(index.first_idle_with_local_work().valid());
  index.mark_idle(GpuId(2));
  EXPECT_EQ(index.first_idle_with_local_work(), GpuId(2));
}

// Randomized add/fence/unfence/busy/idle/dispatch/local-queue churn,
// cross-checked against a naive full-rescan model after every step.
TEST(ClusterStateIndexTest, RandomizedMembershipMatchesFullRescan) {
  struct Naive {
    bool registered = false, idle = true, fenced = false;
    std::int64_t dispatches = 0, local_pending = 0;
  };
  ClusterStateIndex index;
  std::vector<Naive> naive;
  Rng rng(1234);

  auto naive_idle_order = [&] {
    std::vector<std::pair<std::int64_t, std::int64_t>> keys;
    for (std::size_t i = 0; i < naive.size(); ++i) {
      const Naive& n = naive[i];
      if (n.registered && n.idle && !n.fenced) {
        keys.emplace_back(-n.dispatches, static_cast<std::int64_t>(i));
      }
    }
    std::sort(keys.begin(), keys.end());
    std::vector<GpuId> out;
    for (const auto& [neg, id] : keys) out.push_back(GpuId(id));
    return out;
  };
  auto naive_first_serviceable = [&] {
    GpuId best;
    std::int64_t best_dispatches = -1;
    for (std::size_t i = 0; i < naive.size(); ++i) {
      const Naive& n = naive[i];
      if (!n.registered || !n.idle || n.fenced || n.local_pending == 0) continue;
      if (n.dispatches > best_dispatches) {  // strict >: lowest id wins ties
        best_dispatches = n.dispatches;
        best = GpuId(static_cast<std::int64_t>(i));
      }
    }
    return best;
  };

  for (int step = 0; step < 4000; ++step) {
    const auto op = rng.next_below(8);
    const auto pick = [&]() -> std::int64_t {
      return naive.empty()
                 ? -1
                 : static_cast<std::int64_t>(rng.next_below(naive.size()));
    };
    if (op == 0 || naive.empty()) {
      const GpuId id(static_cast<std::int64_t>(naive.size()));
      index.add_gpu(id);
      naive.emplace_back().registered = true;
    } else if (op == 1) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && !n.fenced) {
        index.fence(GpuId(g));
        n.fenced = true;
      }
    } else if (op == 2) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && n.fenced) {
        // Half the time retire a drained GPU, half the time abort the drain.
        if (n.idle && n.local_pending == 0 && rng.next_below(2) == 0) {
          index.remove_gpu(GpuId(g));
          n.registered = false;
        } else {
          index.unfence(GpuId(g));
          n.fenced = false;
        }
      }
    } else if (op == 3) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && n.idle) {
        index.mark_busy(GpuId(g));
        n.idle = false;
      }
    } else if (op == 4) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && !n.idle) {
        index.mark_idle(GpuId(g));
        n.idle = true;
      }
    } else if (op == 5) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered) {
        index.record_dispatch(GpuId(g));
        ++n.dispatches;
      }
    } else if (op == 6) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered) {
        index.add_local_request(GpuId(g));
        ++n.local_pending;
      }
    } else {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && n.local_pending > 0) {
        index.pop_local_request(GpuId(g));
        --n.local_pending;
      }
    }
    ASSERT_EQ(index.idle_gpus(), naive_idle_order()) << "step " << step;
    ASSERT_EQ(index.first_idle_with_local_work(), naive_first_serviceable())
        << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// CacheManager membership
// ---------------------------------------------------------------------------

TEST(CacheMembershipTest, FenceHidesHolderFromLocationIndex) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  cache.add_gpu(GpuId(1), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(7), MiB(100)).ok());
  ASSERT_TRUE(cache.record_insertion(GpuId(1), ModelId(7), MiB(100)).ok());
  EXPECT_EQ(cache.duplicate_count(ModelId(7)), 2u);

  cache.fence_gpu(GpuId(0));
  // The scheduler-facing views stop reporting the draining holder...
  EXPECT_EQ(cache.locations(ModelId(7)), std::vector<GpuId>{GpuId(1)});
  EXPECT_EQ(cache.duplicate_count(ModelId(7)), 1u);
  // ...while the per-GPU truth stays live for in-flight bookkeeping.
  EXPECT_TRUE(cache.is_cached(GpuId(0), ModelId(7)));
  EXPECT_TRUE(cache.record_access(GpuId(0), ModelId(7)).ok());

  cache.unfence_gpu(GpuId(0));
  EXPECT_EQ(cache.locations(ModelId(7)).size(), 2u);
}

TEST(CacheMembershipTest, FencedSoleHolderIsNotCachedAnywhere) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(3), MiB(100)).ok());
  EXPECT_TRUE(cache.cached_anywhere(ModelId(3)));
  cache.fence_gpu(GpuId(0));
  EXPECT_FALSE(cache.cached_anywhere(ModelId(3)));
  EXPECT_TRUE(cache.locations(ModelId(3)).empty());
}

TEST(CacheMembershipTest, RemoveDropsResidentModelsAndRetiresSlot) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  cache.add_gpu(GpuId(1), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(1), MiB(100)).ok());
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(2), MiB(100)).ok());
  const std::int64_t evictions_before = cache.stats().evictions;

  cache.fence_gpu(GpuId(0));
  cache.remove_gpu(GpuId(0));
  EXPECT_EQ(cache.gpu_count(), 1u);
  EXPECT_FALSE(cache.is_registered(GpuId(0)));
  EXPECT_TRUE(cache.is_registered(GpuId(1)));
  // Decommission drops are not cache-pressure evictions.
  EXPECT_EQ(cache.stats().evictions, evictions_before);
  EXPECT_DEATH(cache.is_cached(GpuId(0), ModelId(1)), "unknown gpu");
}

TEST(CacheMembershipTest, RemoveWithPinnedModelDies) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(1), MiB(100)).ok());
  ASSERT_TRUE(cache.pin(GpuId(0), ModelId(1)).ok());
  cache.fence_gpu(GpuId(0));
  EXPECT_DEATH(cache.remove_gpu(GpuId(0)), "pinned");
  ASSERT_TRUE(cache.unpin(GpuId(0), ModelId(1)).ok());
  cache.remove_gpu(GpuId(0));  // drained now
}

TEST(CacheMembershipTest, EvictionOnFencedGpuSkipsLocationIndex) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(1), MiB(100)).ok());
  cache.fence_gpu(GpuId(0));
  ASSERT_TRUE(cache.record_eviction(GpuId(0), ModelId(1)).ok());
  EXPECT_FALSE(cache.cached_anywhere(ModelId(1)));
  cache.unfence_gpu(GpuId(0));  // nothing resident: no index entries return
  EXPECT_TRUE(cache.locations(ModelId(1)).empty());
}

// ---------------------------------------------------------------------------
// Engine drain / cold-start semantics
// ---------------------------------------------------------------------------

TEST(EngineMembershipTest, ScaleUpDuringFullGlobalQueueDrainsToNewGpu) {
  auto built = testkit::ClusterBuilder().nodes(1).gpus_per_node(1).models(1).build();
  cluster::SimCluster& cluster = *built;

  // Backlog: one runs, four wait in the global queue.
  for (int i = 0; i < 5; ++i) {
    cluster.simulator().schedule_at(0, [&cluster, i] {
      cluster.engine().submit(make_request(i, 0, 0));
    });
  }
  // Provisioned GPU joins mid-backlog; the policy must use it immediately.
  GpuId added;
  cluster.simulator().schedule_at(sec(1), [&cluster, &added] {
    EXPECT_GT(cluster.engine().global_queue().size(), 0u);
    added = cluster.add_gpu(gpu::rtx2080());
  });
  cluster.simulator().run();

  ASSERT_EQ(cluster.engine().completions().size(), 5u);
  int on_added = 0;
  for (const auto& record : cluster.engine().completions()) {
    if (record.gpu == added) ++on_added;
  }
  EXPECT_GT(on_added, 0);
  EXPECT_EQ(cluster.engine().schedulable_gpu_count(), 2u);
}

TEST(EngineMembershipTest, ScaleDownDrainsInFlightAndLocalQueueWork) {
  // inception.v3 has the catalog's widest load/infer gap, so follow-up
  // requests queue locally on the warm GPU (see cluster_test). Fencing
  // that GPU mid-burst must finish the in-flight hit AND the local queue
  // on it, then report drained.
  models::ModelRegistry registry;
  models::ModelProfile inception = *models::find_model("inception.v3");
  inception.id = ModelId(0);
  ASSERT_TRUE(registry.register_model(inception).ok());
  cluster::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  config.policy = core::PolicyName::kLalb;
  cluster::SimCluster cluster(config, registry);
  auto& engine = cluster.engine();

  cluster.simulator().schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  cluster.simulator().run();
  const GpuId hot = engine.completions().at(0).gpu;

  cluster.simulator().schedule_at(sec(10), [&] {
    engine.submit(make_request(1, 0, sec(10)));
    engine.submit(make_request(2, 0, sec(10)));
    engine.submit(make_request(3, 0, sec(10)));
  });
  cluster.simulator().schedule_at(sec(10) + usec(1), [&, hot] {
    ASSERT_EQ(engine.local_queues().size(hot), 2u);
    cluster.fence_gpu(hot);
    EXPECT_TRUE(engine.is_fenced(hot));
    EXPECT_FALSE(cluster.gpu_drained(hot));
    // The draining holder no longer attracts requests.
    EXPECT_TRUE(cluster.cache().locations(ModelId(0)).empty());
  });
  cluster.simulator().run();

  ASSERT_EQ(engine.completions().size(), 4u);
  for (const auto& record : engine.completions()) {
    EXPECT_EQ(record.gpu, hot);  // committed work finished on the fenced GPU
  }
  EXPECT_TRUE(cluster.gpu_drained(hot));
  cluster.remove_gpu(hot);
  EXPECT_EQ(engine.schedulable_gpu_count(), 1u);

  // Post-removal traffic lands on the surviving GPU as a plain cold miss.
  cluster.simulator().schedule_at(sec(60),
                                  [&] { engine.submit(make_request(4, 0, sec(60))); });
  cluster.simulator().run();
  const auto& last = engine.completions().back();
  EXPECT_NE(last.gpu, hot);
  EXPECT_FALSE(last.cache_hit);
  EXPECT_FALSE(last.false_miss);  // fenced/removed holders don't count
}

TEST(EngineMembershipTest, FenceIdleGpuWithQueuedLocalWorkStartsDrainImmediately) {
  models::ModelRegistry registry;
  models::ModelProfile inception = *models::find_model("inception.v3");
  inception.id = ModelId(0);
  ASSERT_TRUE(registry.register_model(inception).ok());
  cluster::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  config.policy = core::PolicyName::kLalb;
  cluster::SimCluster cluster(config, registry);
  auto& engine = cluster.engine();

  cluster.simulator().schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  cluster.simulator().run();
  const GpuId hot = engine.completions().at(0).gpu;

  // Build a local queue, then fence at the exact completion instant: the
  // engine serves the fenced GPU's local queue without policy help.
  cluster.simulator().schedule_at(sec(10), [&] {
    engine.submit(make_request(1, 0, sec(10)));
    engine.submit(make_request(2, 0, sec(10)));
  });
  cluster.simulator().schedule_at(sec(10) + usec(1), [&, hot] {
    ASSERT_EQ(engine.local_queues().size(hot), 1u);
    cluster.fence_gpu(hot);
  });
  cluster.simulator().run();
  EXPECT_EQ(engine.completions().size(), 3u);
  EXPECT_TRUE(cluster.gpu_drained(hot));
}

TEST(EngineMembershipTest, UnfenceAbortsDrainAndRestoresLocality) {
  auto built = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).models(1).build();
  cluster::SimCluster& cluster = *built;
  auto& engine = cluster.engine();

  cluster.simulator().schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  cluster.simulator().run();
  const GpuId hot = engine.completions().at(0).gpu;

  cluster.fence_gpu(hot);
  EXPECT_TRUE(cluster.cache().locations(ModelId(0)).empty());
  cluster.unfence_gpu(hot);
  EXPECT_EQ(cluster.cache().locations(ModelId(0)), std::vector<GpuId>{hot});

  cluster.simulator().schedule_at(sec(10),
                                  [&] { engine.submit(make_request(1, 0, sec(10))); });
  cluster.simulator().run();
  EXPECT_TRUE(engine.completions().back().cache_hit);
  EXPECT_EQ(engine.completions().back().gpu, hot);
}

// ---------------------------------------------------------------------------
// Scaling policies
// ---------------------------------------------------------------------------

FleetView view_at(SimTime now, std::size_t gpus, std::size_t idle,
                  std::size_t queue_len) {
  FleetView view;
  view.now = now;
  view.schedulable_gpus = gpus;
  view.idle_gpus = idle;
  view.queue_len = queue_len;
  view.in_flight = gpus - idle;
  view.min_gpus = 2;
  view.max_gpus = 16;
  return view;
}

TEST(ReactivePolicyTest, ScalesUpOnQueuePressureWithCooldown) {
  ReactivePolicy policy;
  // 4 GPUs, 12 queued: wants queue/gpu back to 1.0 -> add 8.
  ScalingDecision d = policy.evaluate(view_at(sec(100), 4, 0, 12));
  EXPECT_EQ(d.add, 8u);
  EXPECT_EQ(d.remove, 0u);
  // Cooldown gates an immediate repeat...
  d = policy.evaluate(view_at(sec(101), 4, 0, 12));
  EXPECT_EQ(d.add, 0u);
  // ...and the ceiling clamps once it expires.
  d = policy.evaluate(view_at(sec(130), 12, 0, 40));
  EXPECT_EQ(d.add, 4u);
}

TEST(ReactivePolicyTest, ScalesDownOnlyAfterSustainedIdle) {
  ReactivePolicyConfig config;
  config.down_stability = sec(30);
  config.down_cooldown = sec(10);
  ReactivePolicy policy(config);
  // Idle but not yet sustained.
  EXPECT_EQ(policy.evaluate(view_at(sec(0), 8, 8, 0)).remove, 0u);
  EXPECT_EQ(policy.evaluate(view_at(sec(20), 8, 8, 0)).remove, 0u);
  // A pressure blip resets the stretch.
  EXPECT_EQ(policy.evaluate(view_at(sec(25), 8, 0, 20)).remove, 0u);
  EXPECT_EQ(policy.evaluate(view_at(sec(40), 8, 8, 0)).remove, 0u);
  EXPECT_EQ(policy.evaluate(view_at(sec(60), 8, 8, 0)).remove, 0u);
  // Sustained now (40 -> 70) and cooled down: reclaim, bounded.
  const ScalingDecision d = policy.evaluate(view_at(sec(70), 8, 8, 0));
  EXPECT_EQ(d.remove, 2u);  // max_step_down
  EXPECT_EQ(d.add, 0u);
}

TEST(ReactivePolicyTest, RespectsFloor) {
  ReactivePolicyConfig config;
  config.down_stability = 0;
  config.down_cooldown = 0;
  ReactivePolicy policy(config);
  FleetView view = view_at(sec(100), 2, 2, 0);  // at min_gpus already
  EXPECT_EQ(policy.evaluate(view).remove, 0u);
}

TEST(KeepAlivePolicyTest, CapacityPersistsForTheWindowThenDecays) {
  KeepAlivePolicyConfig config;
  config.keep_alive = sec(60);
  config.headroom = 1.0;
  KeepAlivePolicy policy(config);

  // Demand spike to 10 concurrent requests.
  FleetView spike = view_at(sec(0), 4, 0, 6);  // 4 running + 6 queued
  ScalingDecision d = policy.evaluate(spike);
  EXPECT_EQ(d.add, 6u);  // target 10, committed 4

  // Demand gone, but the spike is inside the keep-alive window: no reclaim
  // below the remembered peak.
  FleetView quiet = view_at(sec(30), 10, 10, 0);
  quiet.in_flight = 0;
  d = policy.evaluate(quiet);
  EXPECT_EQ(d.add, 0u);
  EXPECT_EQ(d.remove, 0u);

  // Window expired: reclaim down to the floor.
  FleetView later = view_at(sec(120), 10, 10, 0);
  later.in_flight = 0;
  d = policy.evaluate(later);
  EXPECT_EQ(d.remove, 8u);  // target max(peak 0, min 2)
}

// ---------------------------------------------------------------------------
// Autoscaler end-to-end + accounting
// ---------------------------------------------------------------------------

TEST(StepTimelineTest, IntegralAndSamplingMatchSteps) {
  metrics::StepTimeline timeline;
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(5)), 0.0);
  timeline.set(0, 4);
  timeline.set(sec(10), 8);
  timeline.set(sec(20), 2);
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(5)), 4.0);
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(10)), 8.0);
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(30)), 2.0);
  EXPECT_DOUBLE_EQ(timeline.max_value(), 8.0);
  EXPECT_DOUBLE_EQ(timeline.min_value(), 2.0);
  // 10s*4 + 10s*8 + 10s*2 = 140 value-seconds.
  EXPECT_DOUBLE_EQ(timeline.value_seconds(sec(30)), 140.0);
  EXPECT_NEAR(timeline.time_weighted_mean(sec(30)), 140.0 / 30.0, 1e-12);
  // Overwrite at the same instant replaces the step.
  timeline.set(sec(20), 6);
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(25)), 6.0);
}

// A policy that always demands maximal reclaim: the Autoscaler's central
// clamps, not the policy, must hold the min_gpus floor (a KeepAlive-style
// policy computes remove from committed = schedulable + provisioning, so
// without the central clamp a cold-start overlap could breach the floor).
class DrainEverythingPolicy final : public ScalingPolicy {
 public:
  std::string name() const override { return "drain-everything"; }
  ScalingDecision evaluate(const FleetView& view) override {
    ScalingDecision d;
    d.remove = view.schedulable_gpus + view.provisioning_gpus;
    return d;
  }
};

TEST(AutoscalerTest, CentralClampHoldsTheMinGpusFloor) {
  const trace::Workload workload = testkit::make_workload(5, 7, 2);
  AutoscalerConfig config;
  config.min_gpus = 2;
  config.max_gpus = 8;
  config.evaluation_interval = sec(2);

  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = 4;  // start above the floor: drains must stop at it
  cluster_config.gpus_per_node = 1;
  cluster_config.shared_pcie_per_node = false;
  cluster::SimCluster cluster(cluster_config, workload.registry);
  Autoscaler scaler(&cluster, std::make_unique<DrainEverythingPolicy>(), config);

  for (const core::Request& req : workload.requests) {
    cluster.simulator().schedule_at(
        req.arrival, [&cluster, req] { cluster.engine().submit(req); });
  }
  scaler.start(workload.requests.back().arrival);
  cluster.simulator().run();
  scaler.finalize();

  EXPECT_EQ(cluster.engine().pending(), 0u);
  EXPECT_EQ(cluster.engine().completions().size(), workload.requests.size());
  EXPECT_EQ(cluster.engine().schedulable_gpu_count(), 2u);  // floor, not zero
  EXPECT_EQ(scaler.counters().gpus_retired, 2);
  EXPECT_GE(scaler.schedulable_timeline().min_value(), 2.0);
}

TEST(AutoscalerTest, ElasticFleetServesDiurnalTraceCheaperThanPeakFleet) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 10;
  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = 12;
  diurnal.period_minutes = 12;
  diurnal.trough_rpm = 20;
  diurnal.peak_rpm = 150;
  auto workload = trace::build_diurnal_workload(wconfig, diurnal);
  ASSERT_TRUE(workload.ok());

  AutoscalerConfig config;
  config.min_gpus = 2;
  config.max_gpus = 10;
  config.cold_start = sec(15);

  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = 2;
  cluster_config.gpus_per_node = 1;
  cluster_config.shared_pcie_per_node = false;
  cluster::SimCluster cluster(cluster_config, workload->registry);
  Autoscaler scaler(&cluster, std::make_unique<ReactivePolicy>(), config);

  for (const core::Request& req : workload->requests) {
    cluster.simulator().schedule_at(
        req.arrival, [&cluster, req] { cluster.engine().submit(req); });
  }
  scaler.start(workload->requests.back().arrival);
  cluster.simulator().run();
  scaler.finalize();

  EXPECT_EQ(cluster.engine().pending(), 0u);
  EXPECT_EQ(cluster.engine().completions().size(), workload->requests.size());
  EXPECT_GT(scaler.counters().gpus_added, 0);
  EXPECT_GT(scaler.counters().gpus_retired, 0);
  EXPECT_GT(scaler.powered_timeline().max_value(), 2.0);

  const SimTime end = cluster.simulator().now();
  const double peak_fleet_gpu_seconds = 10.0 * sim_to_seconds(end);
  EXPECT_LT(scaler.gpu_seconds(end), peak_fleet_gpu_seconds);
}

// ---------------------------------------------------------------------------
// Determinism guard: with the autoscaler disabled (or pinned min == max),
// the paper grid's completion stream is bit-identical to a plain run.
// ---------------------------------------------------------------------------

std::uint64_t completion_digest(const cluster::SchedulerEngine& engine) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  for (const auto& r : engine.completions()) {
    mix(static_cast<std::uint64_t>(r.id.value()));
    mix(static_cast<std::uint64_t>(r.gpu.value()));
    mix(static_cast<std::uint64_t>(r.arrival));
    mix(static_cast<std::uint64_t>(r.dispatched));
    mix(static_cast<std::uint64_t>(r.completed));
    mix((r.cache_hit ? 1u : 0u) | (r.false_miss ? 2u : 0u) |
        (r.via_local_queue ? 4u : 0u));
  }
  return hash;
}

enum class ScalerMode { kNone, kDisabled, kPinned };

std::uint64_t grid_cell_digest(core::PolicyName policy,
                               const trace::Workload& workload, ScalerMode mode) {
  cluster::ClusterConfig config;  // the paper's 3x4 testbed
  config.policy = policy;
  cluster::SimCluster cluster(config, workload.registry);

  std::unique_ptr<Autoscaler> scaler;
  if (mode != ScalerMode::kNone) {
    AutoscalerConfig scaler_config;
    scaler_config.enabled = mode != ScalerMode::kDisabled;
    // Pinned: evaluation ticks run, but min == max == fleet size means no
    // decision can ever change membership.
    scaler_config.min_gpus = 12;
    scaler_config.max_gpus = 12;
    scaler = std::make_unique<Autoscaler>(
        &cluster, std::make_unique<ReactivePolicy>(), scaler_config);
  }
  for (const core::Request& req : workload.requests) {
    cluster.simulator().schedule_at(
        req.arrival, [&cluster, req] { cluster.engine().submit(req); });
  }
  if (scaler) scaler->start(workload.requests.back().arrival);
  cluster.simulator().run();
  if (scaler) scaler->finalize();
  GFAAS_CHECK(cluster.engine().pending() == 0);
  return completion_digest(cluster.engine());
}

TEST(AutoscalerDeterminismTest, PaperGridBitIdenticalWithAutoscalerDisabled) {
  // Full paper window (6 min x 325 rpm), working set 15, all three
  // schedulers: a disabled autoscaler must leave no trace in the
  // completion stream, and even a ticking one pinned to min == max must
  // only read state, never perturb it.
  const trace::Workload workload = testkit::make_workload(15, 7, 6);
  for (core::PolicyName policy :
       {core::PolicyName::kLb, core::PolicyName::kLalb, core::PolicyName::kLalbO3}) {
    const std::uint64_t plain =
        grid_cell_digest(policy, workload, ScalerMode::kNone);
    EXPECT_EQ(plain, grid_cell_digest(policy, workload, ScalerMode::kDisabled))
        << core::policy_display_name(policy);
    EXPECT_EQ(plain, grid_cell_digest(policy, workload, ScalerMode::kPinned))
        << core::policy_display_name(policy);
  }
}

}  // namespace
}  // namespace gfaas::autoscale
