// Elastic-fleet tests: dynamic GPU membership invariants in
// ClusterStateIndex and CacheManager (add/fence/remove mid-run), the
// engine's drain/cold-start semantics, the scaling policies (reactive,
// keep-alive, predictive), warm-pool-aware drain-victim selection, the
// Autoscaler end-to-end, sim-vs-realtime deployment-mode consistency, and
// the determinism guard asserting the paper grid is bit-identical with
// the autoscaler disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "autoscale/autoscaler.h"
#include "autoscale/deployment.h"
#include "cache/cache_manager.h"
#include "cluster/cluster_state_index.h"
#include "cluster/realtime_cluster.h"
#include "common/rng.h"
#include "metrics/fleet.h"
#include "testing/builders.h"
#include "trace/workload.h"

namespace gfaas::autoscale {
namespace {

using cluster::ClusterStateIndex;
using testkit::head_registry;
using testkit::make_request;

// ---------------------------------------------------------------------------
// ClusterStateIndex membership
// ---------------------------------------------------------------------------

TEST(ClusterStateIndexTest, FenceRemovesFromIdleEnumeration) {
  ClusterStateIndex index;
  for (int i = 0; i < 3; ++i) index.add_gpu(GpuId(i));
  EXPECT_EQ(index.schedulable_count(), 3u);
  index.fence(GpuId(1));
  EXPECT_EQ(index.schedulable_count(), 2u);
  EXPECT_TRUE(index.is_fenced(GpuId(1)));
  EXPECT_TRUE(index.is_idle(GpuId(1)));  // physically idle, just fenced
  const auto idle = index.idle_gpus();
  EXPECT_EQ(idle.size(), 2u);
  EXPECT_TRUE(std::find(idle.begin(), idle.end(), GpuId(1)) == idle.end());
  index.unfence(GpuId(1));
  EXPECT_EQ(index.idle_gpus().size(), 3u);
}

TEST(ClusterStateIndexTest, RemoveRetiresIdAndRejectsLookups) {
  ClusterStateIndex index;
  index.add_gpu(GpuId(0));
  index.add_gpu(GpuId(1));
  index.fence(GpuId(0));
  index.remove_gpu(GpuId(0));
  EXPECT_FALSE(index.is_registered(GpuId(0)));
  EXPECT_TRUE(index.is_registered(GpuId(1)));
  EXPECT_EQ(index.gpu_count(), 2u);  // ids stay reserved
  EXPECT_EQ(index.schedulable_count(), 1u);
  EXPECT_EQ(index.idle_gpus().size(), 1u);
  // New GPUs keep dense numbering after a removal.
  index.add_gpu(GpuId(2));
  EXPECT_EQ(index.idle_gpus().size(), 2u);
  EXPECT_DEATH(index.mark_busy(GpuId(0)), "removed");
}

TEST(ClusterStateIndexTest, RemoveBeforeDrainDies) {
  ClusterStateIndex index;
  index.add_gpu(GpuId(0));
  EXPECT_DEATH(index.remove_gpu(GpuId(0)), "fenced");
  index.fence(GpuId(0));
  index.mark_busy(GpuId(0));
  EXPECT_DEATH(index.remove_gpu(GpuId(0)), "drain");
}

TEST(ClusterStateIndexTest, ServiceableTracksIdleLocalWorkInFrequencyOrder) {
  ClusterStateIndex index;
  for (int i = 0; i < 3; ++i) index.add_gpu(GpuId(i));
  EXPECT_FALSE(index.first_idle_with_local_work().valid());

  // gpu2 is hottest (2 dispatches), gpu1 has 1, gpu0 none.
  for (GpuId gpu : {GpuId(2), GpuId(2), GpuId(1)}) index.record_dispatch(gpu);
  index.add_local_request(GpuId(1));
  index.add_local_request(GpuId(2));
  EXPECT_EQ(index.first_idle_with_local_work(), GpuId(2));  // most dispatched

  index.mark_busy(GpuId(2));  // busy GPUs are not serviceable
  EXPECT_EQ(index.first_idle_with_local_work(), GpuId(1));
  index.fence(GpuId(1));  // fenced GPUs are not serviceable
  EXPECT_FALSE(index.first_idle_with_local_work().valid());
  index.unfence(GpuId(1));
  EXPECT_EQ(index.first_idle_with_local_work(), GpuId(1));
  index.pop_local_request(GpuId(1));
  EXPECT_FALSE(index.first_idle_with_local_work().valid());
  index.mark_idle(GpuId(2));
  EXPECT_EQ(index.first_idle_with_local_work(), GpuId(2));
}

// Randomized add/fence/unfence/busy/idle/dispatch/local-queue churn,
// cross-checked against a naive full-rescan model after every step.
TEST(ClusterStateIndexTest, RandomizedMembershipMatchesFullRescan) {
  struct Naive {
    bool registered = false, idle = true, fenced = false;
    std::int64_t dispatches = 0, local_pending = 0;
  };
  ClusterStateIndex index;
  std::vector<Naive> naive;
  Rng rng(1234);

  auto naive_idle_order = [&] {
    std::vector<std::pair<std::int64_t, std::int64_t>> keys;
    for (std::size_t i = 0; i < naive.size(); ++i) {
      const Naive& n = naive[i];
      if (n.registered && n.idle && !n.fenced) {
        keys.emplace_back(-n.dispatches, static_cast<std::int64_t>(i));
      }
    }
    std::sort(keys.begin(), keys.end());
    std::vector<GpuId> out;
    for (const auto& [neg, id] : keys) out.push_back(GpuId(id));
    return out;
  };
  auto naive_first_serviceable = [&] {
    GpuId best;
    std::int64_t best_dispatches = -1;
    for (std::size_t i = 0; i < naive.size(); ++i) {
      const Naive& n = naive[i];
      if (!n.registered || !n.idle || n.fenced || n.local_pending == 0) continue;
      if (n.dispatches > best_dispatches) {  // strict >: lowest id wins ties
        best_dispatches = n.dispatches;
        best = GpuId(static_cast<std::int64_t>(i));
      }
    }
    return best;
  };

  for (int step = 0; step < 4000; ++step) {
    const auto op = rng.next_below(8);
    const auto pick = [&]() -> std::int64_t {
      return naive.empty()
                 ? -1
                 : static_cast<std::int64_t>(rng.next_below(naive.size()));
    };
    if (op == 0 || naive.empty()) {
      const GpuId id(static_cast<std::int64_t>(naive.size()));
      index.add_gpu(id);
      naive.emplace_back().registered = true;
    } else if (op == 1) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && !n.fenced) {
        index.fence(GpuId(g));
        n.fenced = true;
      }
    } else if (op == 2) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && n.fenced) {
        // Half the time retire a drained GPU, half the time abort the drain.
        if (n.idle && n.local_pending == 0 && rng.next_below(2) == 0) {
          index.remove_gpu(GpuId(g));
          n.registered = false;
        } else {
          index.unfence(GpuId(g));
          n.fenced = false;
        }
      }
    } else if (op == 3) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && n.idle) {
        index.mark_busy(GpuId(g));
        n.idle = false;
      }
    } else if (op == 4) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && !n.idle) {
        index.mark_idle(GpuId(g));
        n.idle = true;
      }
    } else if (op == 5) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered) {
        index.record_dispatch(GpuId(g));
        ++n.dispatches;
      }
    } else if (op == 6) {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered) {
        index.add_local_request(GpuId(g));
        ++n.local_pending;
      }
    } else {
      const std::int64_t g = pick();
      Naive& n = naive[static_cast<std::size_t>(g)];
      if (n.registered && n.local_pending > 0) {
        index.pop_local_request(GpuId(g));
        --n.local_pending;
      }
    }
    ASSERT_EQ(index.idle_gpus(), naive_idle_order()) << "step " << step;
    ASSERT_EQ(index.first_idle_with_local_work(), naive_first_serviceable())
        << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// CacheManager membership
// ---------------------------------------------------------------------------

TEST(CacheMembershipTest, FenceHidesHolderFromLocationIndex) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  cache.add_gpu(GpuId(1), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(7), MiB(100)).ok());
  ASSERT_TRUE(cache.record_insertion(GpuId(1), ModelId(7), MiB(100)).ok());
  EXPECT_EQ(cache.duplicate_count(ModelId(7)), 2u);

  cache.fence_gpu(GpuId(0));
  // The scheduler-facing views stop reporting the draining holder...
  EXPECT_EQ(cache.locations(ModelId(7)), std::vector<GpuId>{GpuId(1)});
  EXPECT_EQ(cache.duplicate_count(ModelId(7)), 1u);
  // ...while the per-GPU truth stays live for in-flight bookkeeping.
  EXPECT_TRUE(cache.is_cached(GpuId(0), ModelId(7)));
  EXPECT_TRUE(cache.record_access(GpuId(0), ModelId(7)).ok());

  cache.unfence_gpu(GpuId(0));
  EXPECT_EQ(cache.locations(ModelId(7)).size(), 2u);
}

TEST(CacheMembershipTest, FencedSoleHolderIsNotCachedAnywhere) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(3), MiB(100)).ok());
  EXPECT_TRUE(cache.cached_anywhere(ModelId(3)));
  cache.fence_gpu(GpuId(0));
  EXPECT_FALSE(cache.cached_anywhere(ModelId(3)));
  EXPECT_TRUE(cache.locations(ModelId(3)).empty());
}

TEST(CacheMembershipTest, RemoveDropsResidentModelsAndRetiresSlot) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  cache.add_gpu(GpuId(1), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(1), MiB(100)).ok());
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(2), MiB(100)).ok());
  const std::int64_t evictions_before = cache.stats().evictions;

  cache.fence_gpu(GpuId(0));
  cache.remove_gpu(GpuId(0));
  EXPECT_EQ(cache.gpu_count(), 1u);
  EXPECT_FALSE(cache.is_registered(GpuId(0)));
  EXPECT_TRUE(cache.is_registered(GpuId(1)));
  // Decommission drops are not cache-pressure evictions.
  EXPECT_EQ(cache.stats().evictions, evictions_before);
  EXPECT_DEATH(cache.is_cached(GpuId(0), ModelId(1)), "unknown gpu");
}

TEST(CacheMembershipTest, RemoveWithPinnedModelDies) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(1), MiB(100)).ok());
  ASSERT_TRUE(cache.pin(GpuId(0), ModelId(1)).ok());
  cache.fence_gpu(GpuId(0));
  EXPECT_DEATH(cache.remove_gpu(GpuId(0)), "pinned");
  ASSERT_TRUE(cache.unpin(GpuId(0), ModelId(1)).ok());
  cache.remove_gpu(GpuId(0));  // drained now
}

TEST(CacheMembershipTest, EvictionOnFencedGpuSkipsLocationIndex) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(1), MiB(100)).ok());
  cache.fence_gpu(GpuId(0));
  ASSERT_TRUE(cache.record_eviction(GpuId(0), ModelId(1)).ok());
  EXPECT_FALSE(cache.cached_anywhere(ModelId(1)));
  cache.unfence_gpu(GpuId(0));  // nothing resident: no index entries return
  EXPECT_TRUE(cache.locations(ModelId(1)).empty());
}

// ---------------------------------------------------------------------------
// Engine drain / cold-start semantics
// ---------------------------------------------------------------------------

TEST(EngineMembershipTest, ScaleUpDuringFullGlobalQueueDrainsToNewGpu) {
  auto built = testkit::ClusterBuilder().nodes(1).gpus_per_node(1).models(1).build();
  cluster::SimCluster& cluster = *built;

  // Backlog: one runs, four wait in the global queue.
  for (int i = 0; i < 5; ++i) {
    cluster.simulator().schedule_at(0, [&cluster, i] {
      cluster.engine().submit(make_request(i, 0, 0));
    });
  }
  // Provisioned GPU joins mid-backlog; the policy must use it immediately.
  GpuId added;
  cluster.simulator().schedule_at(sec(1), [&cluster, &added] {
    EXPECT_GT(cluster.engine().global_queue().size(), 0u);
    added = cluster.add_gpu(gpu::rtx2080());
  });
  cluster.simulator().run();

  ASSERT_EQ(cluster.engine().completions().size(), 5u);
  int on_added = 0;
  for (const auto& record : cluster.engine().completions()) {
    if (record.gpu == added) ++on_added;
  }
  EXPECT_GT(on_added, 0);
  EXPECT_EQ(cluster.engine().schedulable_gpu_count(), 2u);
}

TEST(EngineMembershipTest, ScaleDownDrainsInFlightAndLocalQueueWork) {
  // inception.v3 has the catalog's widest load/infer gap, so follow-up
  // requests queue locally on the warm GPU (see cluster_test). Fencing
  // that GPU mid-burst must finish the in-flight hit AND the local queue
  // on it, then report drained.
  models::ModelRegistry registry;
  models::ModelProfile inception = *models::find_model("inception.v3");
  inception.id = ModelId(0);
  ASSERT_TRUE(registry.register_model(inception).ok());
  cluster::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  config.policy = core::PolicyName::kLalb;
  cluster::SimCluster cluster(config, registry);
  auto& engine = cluster.engine();

  cluster.simulator().schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  cluster.simulator().run();
  const GpuId hot = engine.completions().at(0).gpu;

  cluster.simulator().schedule_at(sec(10), [&] {
    engine.submit(make_request(1, 0, sec(10)));
    engine.submit(make_request(2, 0, sec(10)));
    engine.submit(make_request(3, 0, sec(10)));
  });
  cluster.simulator().schedule_at(sec(10) + usec(1), [&, hot] {
    ASSERT_EQ(engine.local_queues().size(hot), 2u);
    cluster.fence_gpu(hot);
    EXPECT_TRUE(engine.is_fenced(hot));
    EXPECT_FALSE(cluster.gpu_drained(hot));
    // The draining holder no longer attracts requests.
    EXPECT_TRUE(cluster.cache().locations(ModelId(0)).empty());
  });
  cluster.simulator().run();

  ASSERT_EQ(engine.completions().size(), 4u);
  for (const auto& record : engine.completions()) {
    EXPECT_EQ(record.gpu, hot);  // committed work finished on the fenced GPU
  }
  EXPECT_TRUE(cluster.gpu_drained(hot));
  cluster.remove_gpu(hot);
  EXPECT_EQ(engine.schedulable_gpu_count(), 1u);

  // Post-removal traffic lands on the surviving GPU as a plain cold miss.
  cluster.simulator().schedule_at(sec(60),
                                  [&] { engine.submit(make_request(4, 0, sec(60))); });
  cluster.simulator().run();
  const auto& last = engine.completions().back();
  EXPECT_NE(last.gpu, hot);
  EXPECT_FALSE(last.cache_hit);
  EXPECT_FALSE(last.false_miss);  // fenced/removed holders don't count
}

TEST(EngineMembershipTest, FenceIdleGpuWithQueuedLocalWorkStartsDrainImmediately) {
  models::ModelRegistry registry;
  models::ModelProfile inception = *models::find_model("inception.v3");
  inception.id = ModelId(0);
  ASSERT_TRUE(registry.register_model(inception).ok());
  cluster::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  config.policy = core::PolicyName::kLalb;
  cluster::SimCluster cluster(config, registry);
  auto& engine = cluster.engine();

  cluster.simulator().schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  cluster.simulator().run();
  const GpuId hot = engine.completions().at(0).gpu;

  // Build a local queue, then fence at the exact completion instant: the
  // engine serves the fenced GPU's local queue without policy help.
  cluster.simulator().schedule_at(sec(10), [&] {
    engine.submit(make_request(1, 0, sec(10)));
    engine.submit(make_request(2, 0, sec(10)));
  });
  cluster.simulator().schedule_at(sec(10) + usec(1), [&, hot] {
    ASSERT_EQ(engine.local_queues().size(hot), 1u);
    cluster.fence_gpu(hot);
  });
  cluster.simulator().run();
  EXPECT_EQ(engine.completions().size(), 3u);
  EXPECT_TRUE(cluster.gpu_drained(hot));
}

TEST(EngineMembershipTest, UnfenceAbortsDrainAndRestoresLocality) {
  auto built = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).models(1).build();
  cluster::SimCluster& cluster = *built;
  auto& engine = cluster.engine();

  cluster.simulator().schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  cluster.simulator().run();
  const GpuId hot = engine.completions().at(0).gpu;

  cluster.fence_gpu(hot);
  EXPECT_TRUE(cluster.cache().locations(ModelId(0)).empty());
  cluster.unfence_gpu(hot);
  EXPECT_EQ(cluster.cache().locations(ModelId(0)), std::vector<GpuId>{hot});

  cluster.simulator().schedule_at(sec(10),
                                  [&] { engine.submit(make_request(1, 0, sec(10))); });
  cluster.simulator().run();
  EXPECT_TRUE(engine.completions().back().cache_hit);
  EXPECT_EQ(engine.completions().back().gpu, hot);
}

// ---------------------------------------------------------------------------
// Scaling policies
// ---------------------------------------------------------------------------

FleetView view_at(SimTime now, std::size_t gpus, std::size_t idle,
                  std::size_t queue_len) {
  FleetView view;
  view.now = now;
  view.schedulable_gpus = gpus;
  view.idle_gpus = idle;
  view.queue_len = queue_len;
  view.in_flight = gpus - idle;
  view.min_gpus = 2;
  view.max_gpus = 16;
  return view;
}

TEST(ReactivePolicyTest, ScalesUpOnQueuePressureWithCooldown) {
  ReactivePolicy policy;
  // 4 GPUs, 12 queued: wants queue/gpu back to 1.0 -> add 8.
  ScalingDecision d = policy.evaluate(view_at(sec(100), 4, 0, 12));
  EXPECT_EQ(d.add, 8u);
  EXPECT_EQ(d.remove, 0u);
  // Cooldown gates an immediate repeat...
  d = policy.evaluate(view_at(sec(101), 4, 0, 12));
  EXPECT_EQ(d.add, 0u);
  // ...and the ceiling clamps once it expires.
  d = policy.evaluate(view_at(sec(130), 12, 0, 40));
  EXPECT_EQ(d.add, 4u);
}

TEST(ReactivePolicyTest, ScalesDownOnlyAfterSustainedIdle) {
  ReactivePolicyConfig config;
  config.down_stability = sec(30);
  config.down_cooldown = sec(10);
  ReactivePolicy policy(config);
  // Idle but not yet sustained.
  EXPECT_EQ(policy.evaluate(view_at(sec(0), 8, 8, 0)).remove, 0u);
  EXPECT_EQ(policy.evaluate(view_at(sec(20), 8, 8, 0)).remove, 0u);
  // A pressure blip resets the stretch.
  EXPECT_EQ(policy.evaluate(view_at(sec(25), 8, 0, 20)).remove, 0u);
  EXPECT_EQ(policy.evaluate(view_at(sec(40), 8, 8, 0)).remove, 0u);
  EXPECT_EQ(policy.evaluate(view_at(sec(60), 8, 8, 0)).remove, 0u);
  // Sustained now (40 -> 70) and cooled down: reclaim, bounded.
  const ScalingDecision d = policy.evaluate(view_at(sec(70), 8, 8, 0));
  EXPECT_EQ(d.remove, 2u);  // max_step_down
  EXPECT_EQ(d.add, 0u);
}

TEST(ReactivePolicyTest, ConsecutiveShrinksReestablishStability) {
  ReactivePolicyConfig config;
  config.down_stability = sec(30);
  config.down_cooldown = sec(10);  // shorter than stability: the old bug
                                   // shrank again every cooldown
  ReactivePolicy policy(config);
  // Idle stretch established at t=0; first shrink once sustained.
  EXPECT_EQ(policy.evaluate(view_at(sec(0), 8, 8, 0)).remove, 0u);
  EXPECT_EQ(policy.evaluate(view_at(sec(40), 8, 8, 0)).remove, 2u);
  // Still idle, cooldown already expired — but the shrink must have reset
  // the stability window, so the smaller fleet gets its full
  // down_stability of observation before shrinking again.
  EXPECT_EQ(policy.evaluate(view_at(sec(50), 6, 6, 0)).remove, 0u);
  EXPECT_EQ(policy.evaluate(view_at(sec(60), 6, 6, 0)).remove, 0u);
  // 30s of sustained idleness after the shrink: reclaim again.
  EXPECT_EQ(policy.evaluate(view_at(sec(70), 6, 6, 0)).remove, 2u);
}

TEST(ReactivePolicyTest, RespectsFloor) {
  ReactivePolicyConfig config;
  config.down_stability = 0;
  config.down_cooldown = 0;
  ReactivePolicy policy(config);
  FleetView view = view_at(sec(100), 2, 2, 0);  // at min_gpus already
  EXPECT_EQ(policy.evaluate(view).remove, 0u);
}

TEST(KeepAlivePolicyTest, CapacityPersistsForTheWindowThenDecays) {
  KeepAlivePolicyConfig config;
  config.keep_alive = sec(60);
  config.headroom = 1.0;
  KeepAlivePolicy policy(config);

  // Demand spike to 10 concurrent requests.
  FleetView spike = view_at(sec(0), 4, 0, 6);  // 4 running + 6 queued
  ScalingDecision d = policy.evaluate(spike);
  EXPECT_EQ(d.add, 6u);  // target 10, committed 4

  // Demand gone, but the spike is inside the keep-alive window: no reclaim
  // below the remembered peak.
  FleetView quiet = view_at(sec(30), 10, 10, 0);
  quiet.in_flight = 0;
  d = policy.evaluate(quiet);
  EXPECT_EQ(d.add, 0u);
  EXPECT_EQ(d.remove, 0u);

  // Window expired: reclaim down to the floor.
  FleetView later = view_at(sec(120), 10, 10, 0);
  later.in_flight = 0;
  d = policy.evaluate(later);
  EXPECT_EQ(d.remove, 8u);  // target max(peak 0, min 2)
}

TEST(KeepAlivePolicyTest, SampleExpiresAtExactlyKeepAlive) {
  KeepAlivePolicyConfig config;
  config.keep_alive = sec(60);
  config.headroom = 1.0;
  KeepAlivePolicy policy(config);

  FleetView spike = view_at(sec(0), 4, 0, 6);  // demand 10
  EXPECT_EQ(policy.evaluate(spike).add, 6u);

  // A sample at t covers [t, t + keep_alive): at exactly t = keep_alive
  // the spike has aged out and the fleet collapses to the floor. (The old
  // strict-< eviction kept it one extra tick, stretching every window by
  // an evaluation interval.)
  FleetView later = view_at(sec(60), 10, 10, 0);
  later.in_flight = 0;
  const ScalingDecision d = policy.evaluate(later);
  EXPECT_EQ(d.remove, 8u);  // target max(peak 0, min 2)
}

TEST(KeepAlivePolicyDeathTest, BindRejectsWindowShorterThanInterval) {
  // keep_alive < evaluation_interval means the trailing window can never
  // hold more than the current sample — the policy silently degenerates
  // to instantaneous tracking, so the config is rejected outright.
  KeepAlivePolicyConfig config;
  config.keep_alive = sec(2);
  KeepAlivePolicy policy(config);
  EXPECT_DEATH(policy.bind(sec(5)), "evaluation interval");
  // == interval is just as degenerate under the half-open expiry (the
  // previous sample is dropped the instant the next tick arrives).
  KeepAlivePolicy boundary(config);
  EXPECT_DEATH(boundary.bind(sec(2)), "evaluation interval");
  KeepAlivePolicy ok(config);
  ok.bind(sec(1));  // window spans two ticks: fine
}

// ---------------------------------------------------------------------------
// PredictivePolicy: histogram percentile + trend forecast
// ---------------------------------------------------------------------------

PredictivePolicyConfig predictive_config() {
  PredictivePolicyConfig config;
  config.history = sec(100);
  config.target_percentile = 0.90;
  config.headroom = 1.0;
  config.lead_time = sec(20);
  config.trend_samples = 3;
  config.target_hold = 0;  // most tests probe single-tick decisions
  return config;
}

TEST(PredictivePolicyTest, ForecastsRampOneLeadTimeAhead) {
  PredictivePolicy policy(predictive_config());
  // Demand climbing 0.2/s at a floor-sized fleet. The forecast projects
  // the slope lead_time ahead: capacity for the demand of t+20s is
  // ordered now, so it finishes cold-starting when that demand arrives.
  EXPECT_EQ(policy.evaluate(view_at(sec(0), 2, 2, 2)).add, 0u);  // demand 2
  const ScalingDecision d = policy.evaluate(view_at(sec(10), 2, 2, 4));
  // projected = 4 + 0.2/s * 20s = 8, above the windowed p90 of 4.
  EXPECT_EQ(d.add, 6u);
  EXPECT_EQ(d.remove, 0u);
}

TEST(PredictivePolicyTest, HistogramHoldsCapacityThroughDips) {
  PredictivePolicy policy(predictive_config());
  // A sustained plateau of demand 10 dominates the histogram...
  for (int i = 0; i < 9; ++i) {
    policy.evaluate(view_at(sec(10 * i), 10, 0, 0));  // demand 10
  }
  // ...so one quiet tick does not release it: p90 of {10 x 9, 0} is 10.
  FleetView dip = view_at(sec(90), 10, 10, 0);
  dip.in_flight = 0;
  const ScalingDecision d = policy.evaluate(dip);
  EXPECT_EQ(d.add, 0u);
  EXPECT_EQ(d.remove, 0u);
}

TEST(PredictivePolicyTest, HistoryExpiryReleasesCapacity) {
  PredictivePolicyConfig config = predictive_config();
  config.history = sec(30);
  PredictivePolicy policy(config);
  policy.evaluate(view_at(sec(0), 10, 0, 0));  // demand 10
  // At exactly t = history the plateau sample is out of the window.
  FleetView quiet = view_at(sec(30), 10, 10, 0);
  quiet.in_flight = 0;
  const ScalingDecision d = policy.evaluate(quiet);
  EXPECT_EQ(d.remove, 8u);  // down to the min_gpus floor
}

TEST(PredictivePolicyTest, HeldTargetDelaysReclaim) {
  PredictivePolicyConfig config = predictive_config();
  config.history = sec(30);       // demand samples age out quickly...
  config.target_hold = sec(60);   // ...but predictions floor capacity longer
  PredictivePolicy policy(config);
  policy.evaluate(view_at(sec(0), 10, 0, 0));  // demand 10: target 10 held
  // t=40: the demand sample is out of the history window, so the raw
  // target collapses — but the held prediction from t=0 still floors the
  // fleet, so nothing is released between bursts.
  FleetView quiet = view_at(sec(40), 10, 10, 0);
  quiet.in_flight = 0;
  EXPECT_EQ(policy.evaluate(quiet).remove, 0u);
  // t=70: the held target expired too; capacity finally comes back.
  FleetView later = view_at(sec(70), 10, 10, 0);
  later.in_flight = 0;
  EXPECT_EQ(policy.evaluate(later).remove, 8u);
}

TEST(PredictivePolicyDeathTest, BindRejectsHistoryShorterThanInterval) {
  PredictivePolicyConfig config = predictive_config();
  config.history = sec(2);
  PredictivePolicy policy(config);
  EXPECT_DEATH(policy.bind(sec(5)), "evaluation interval");
}

// ---------------------------------------------------------------------------
// Warm-pool-aware drain-victim selection
// ---------------------------------------------------------------------------

TEST(DrainVictimSelectionTest, PrefersVictimsWhoseModelsAreDuplicated) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  for (int g = 0; g < 3; ++g) cache.add_gpu(GpuId(g), GiB(1));
  // gpu0 holds the fleet's only copy of model 1; gpus 1 and 2 both hold
  // model 2.
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(1), MiB(100)).ok());
  ASSERT_TRUE(cache.record_insertion(GpuId(1), ModelId(2), MiB(100)).ok());
  ASSERT_TRUE(cache.record_insertion(GpuId(2), ModelId(2), MiB(100)).ok());

  // Hot-first idle order puts gpu0 coldest (back of the list): pure
  // coldest-first reclaim would evict the sole warm copy of model 1.
  const std::vector<GpuId> idle = {GpuId(1), GpuId(2), GpuId(0)};
  EXPECT_EQ(select_drain_victims(idle, cache, 1), (std::vector<GpuId>{GpuId(2)}));
  // Full drain: gpu2 (duplicated, colder than gpu1) goes first. That pick
  // makes gpu1 a sole holder of model 2, so rounds two and three see two
  // equally expensive victims and fall back to coldness: gpu0, then gpu1.
  EXPECT_EQ(select_drain_victims(idle, cache, 3),
            (std::vector<GpuId>{GpuId(2), GpuId(0), GpuId(1)}));
  // Never returns more victims than idle candidates.
  EXPECT_EQ(select_drain_victims(idle, cache, 5).size(), 3u);
}

TEST(DrainVictimSelectionTest, BatchNeverDrainsEveryCopyWhileCheaperVictimExists) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  for (int g = 0; g < 3; ++g) cache.add_gpu(GpuId(g), GiB(1));
  // gpus 0 and 1 are each other's only duplicate for model 7; gpu2 holds
  // a (differently) duplicated... nothing at all: an empty, free victim.
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(7), MiB(100)).ok());
  ASSERT_TRUE(cache.record_insertion(GpuId(1), ModelId(7), MiB(100)).ok());

  // Scored against static pre-fence state, gpus 0 and 1 both look free
  // (duplicate_count == 2) and a 2-victim batch would evict every warm
  // copy of model 7. The greedy per-pick recount must route the second
  // pick to the empty gpu2 instead.
  const std::vector<GpuId> idle = {GpuId(2), GpuId(1), GpuId(0)};
  const std::vector<GpuId> victims = select_drain_victims(idle, cache, 2);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], GpuId(0));  // coldest of the duplicated holders
  EXPECT_EQ(victims[1], GpuId(2));  // NOT gpu1: it now holds the sole copy
}

TEST(DrainVictimSelectionTest, EmptyGpuIsAFreeVictim) {
  cache::CacheManager cache(cache::PolicyKind::kLru);
  cache.add_gpu(GpuId(0), GiB(1));
  cache.add_gpu(GpuId(1), GiB(1));
  ASSERT_TRUE(cache.record_insertion(GpuId(0), ModelId(5), MiB(100)).ok());
  // gpu1 holds nothing: reclaiming it forfeits no locality even though
  // gpu0 is colder in the idle ordering.
  const std::vector<GpuId> idle = {GpuId(1), GpuId(0)};
  EXPECT_EQ(select_drain_victims(idle, cache, 1), (std::vector<GpuId>{GpuId(1)}));
}

// ---------------------------------------------------------------------------
// Autoscaler end-to-end + accounting
// ---------------------------------------------------------------------------

TEST(StepTimelineTest, IntegralAndSamplingMatchSteps) {
  metrics::StepTimeline timeline;
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(5)), 0.0);
  timeline.set(0, 4);
  timeline.set(sec(10), 8);
  timeline.set(sec(20), 2);
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(5)), 4.0);
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(10)), 8.0);
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(30)), 2.0);
  EXPECT_DOUBLE_EQ(timeline.max_value(), 8.0);
  EXPECT_DOUBLE_EQ(timeline.min_value(), 2.0);
  // 10s*4 + 10s*8 + 10s*2 = 140 value-seconds.
  EXPECT_DOUBLE_EQ(timeline.value_seconds(sec(30)), 140.0);
  EXPECT_NEAR(timeline.time_weighted_mean(sec(30)), 140.0 / 30.0, 1e-12);
  // Overwrite at the same instant replaces the step.
  timeline.set(sec(20), 6);
  EXPECT_DOUBLE_EQ(timeline.value_at(sec(25)), 6.0);
}

// A policy that always demands maximal reclaim: the Autoscaler's central
// clamps, not the policy, must hold the min_gpus floor (a KeepAlive-style
// policy computes remove from committed = schedulable + provisioning, so
// without the central clamp a cold-start overlap could breach the floor).
class DrainEverythingPolicy final : public ScalingPolicy {
 public:
  std::string name() const override { return "drain-everything"; }
  ScalingDecision evaluate(const FleetView& view) override {
    ScalingDecision d;
    d.remove = view.schedulable_gpus + view.provisioning_gpus;
    return d;
  }
};

TEST(AutoscalerTest, CentralClampHoldsTheMinGpusFloor) {
  const trace::Workload workload = testkit::make_workload(5, 7, 2);
  AutoscalerConfig config;
  config.min_gpus = 2;
  config.max_gpus = 8;
  config.evaluation_interval = sec(2);

  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = 4;  // start above the floor: drains must stop at it
  cluster_config.gpus_per_node = 1;
  cluster_config.shared_pcie_per_node = false;
  cluster::SimCluster cluster(cluster_config, workload.registry);
  Autoscaler scaler(&cluster, std::make_unique<DrainEverythingPolicy>(), config);

  for (const core::Request& req : workload.requests) {
    cluster.simulator().schedule_at(
        req.arrival, [&cluster, req] { cluster.engine().submit(req); });
  }
  scaler.start(workload.requests.back().arrival);
  cluster.simulator().run();
  scaler.finalize();

  EXPECT_EQ(cluster.engine().pending(), 0u);
  EXPECT_EQ(cluster.engine().completions().size(), workload.requests.size());
  EXPECT_EQ(cluster.engine().schedulable_gpu_count(), 2u);  // floor, not zero
  EXPECT_EQ(scaler.counters().gpus_retired, 2);
  EXPECT_GE(scaler.schedulable_timeline().min_value(), 2.0);
}

TEST(AutoscalerTest, ElasticFleetServesDiurnalTraceCheaperThanPeakFleet) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 10;
  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = 12;
  diurnal.period_minutes = 12;
  diurnal.trough_rpm = 20;
  diurnal.peak_rpm = 150;
  auto workload = trace::build_diurnal_workload(wconfig, diurnal);
  ASSERT_TRUE(workload.ok());

  AutoscalerConfig config;
  config.min_gpus = 2;
  config.max_gpus = 10;
  config.cold_start = sec(15);

  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = 2;
  cluster_config.gpus_per_node = 1;
  cluster_config.shared_pcie_per_node = false;
  cluster::SimCluster cluster(cluster_config, workload->registry);
  Autoscaler scaler(&cluster, std::make_unique<ReactivePolicy>(), config);

  for (const core::Request& req : workload->requests) {
    cluster.simulator().schedule_at(
        req.arrival, [&cluster, req] { cluster.engine().submit(req); });
  }
  scaler.start(workload->requests.back().arrival);
  cluster.simulator().run();
  scaler.finalize();

  EXPECT_EQ(cluster.engine().pending(), 0u);
  EXPECT_EQ(cluster.engine().completions().size(), workload->requests.size());
  EXPECT_GT(scaler.counters().gpus_added, 0);
  EXPECT_GT(scaler.counters().gpus_retired, 0);
  EXPECT_GT(scaler.powered_timeline().max_value(), 2.0);

  const SimTime end = cluster.simulator().now();
  const double peak_fleet_gpu_seconds = 10.0 * sim_to_seconds(end);
  EXPECT_LT(scaler.gpu_seconds(end), peak_fleet_gpu_seconds);
}

// ---------------------------------------------------------------------------
// Deployment mode: the same driver + autoscaler + policy, on the
// wall-clock executor with compressed time, agrees with the simulator.
// ---------------------------------------------------------------------------

TEST(DeploymentModeTest, RealtimeReplayMatchesSimulatorWithinTolerance) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 5;
  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = 3;
  diurnal.period_minutes = 3;
  diurnal.trough_rpm = 20;
  diurnal.peak_rpm = 80;
  auto workload = trace::build_diurnal_workload(wconfig, diurnal);
  ASSERT_TRUE(workload.ok());

  AutoscalerConfig config;
  config.min_gpus = 2;
  config.max_gpus = 8;
  config.cold_start = sec(10);

  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = 2;
  cluster_config.gpus_per_node = 1;
  cluster_config.shared_pcie_per_node = false;

  PredictivePolicyConfig policy;
  policy.lead_time = config.cold_start;

  cluster::SimCluster sim(cluster_config, workload->registry);
  Autoscaler sim_scaler(&sim, std::make_unique<PredictivePolicy>(policy), config);
  const ReplayResult sim_run =
      replay_with_autoscaler(sim, workload->requests, sim_scaler);

  // 3 simulated minutes compressed into ~90ms of wall time. Under heavy
  // slowdown (sanitizers, loaded CI) wall-clock jitter perturbs the
  // interleavings, so the cross-checks below are deliberately loose: they
  // catch wiring bugs, not jitter.
  cluster::RealTimeCluster realtime(cluster_config, workload->registry,
                                    /*time_scale=*/2000.0);
  Autoscaler rt_scaler(&realtime, std::make_unique<PredictivePolicy>(policy), config);
  const ReplayResult rt_run =
      replay_with_autoscaler(realtime, workload->requests, rt_scaler);

  // Every request completes in both modes — nothing strands on a drained
  // GPU or races past the executor shutdown.
  EXPECT_EQ(sim_run.completed, workload->requests.size());
  EXPECT_EQ(rt_run.completed, workload->requests.size());
  // Both fleets actually breathed, inside the configured band.
  EXPECT_GT(sim_scaler.counters().gpus_added, 0);
  EXPECT_GT(rt_scaler.counters().gpus_added, 0);
  EXPECT_LE(rt_scaler.powered_timeline().max_value(),
            static_cast<double>(config.max_gpus));
  EXPECT_GE(rt_scaler.schedulable_timeline().min_value(), 0.0);
  // Fleet trajectories agree within a generous factor.
  const SimTime sim_end = sim.executor().now();
  const SimTime rt_end = realtime.executor().now();
  const double sim_mean = sim_scaler.powered_timeline().time_weighted_mean(sim_end);
  const double rt_mean = rt_scaler.powered_timeline().time_weighted_mean(rt_end);
  EXPECT_GT(rt_mean, 0.4 * sim_mean);
  EXPECT_LT(rt_mean, 2.5 * sim_mean);
}

// ---------------------------------------------------------------------------
// Chaos seed for the drain/reap paths: a GPU killed mid-request and a
// delayed cold start, injected into an autoscaled run.
// ---------------------------------------------------------------------------

TEST(AutoscalerChaosTest, DelayedColdStartKeepsAccountingConsistent) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(1).models(3).build();

  AutoscalerConfig config;
  config.evaluation_interval = sec(5);
  config.cold_start = sec(10);
  config.min_gpus = 1;
  config.max_gpus = 4;
  // Fault injection: the first cold start stalls an extra 30s (container
  // pull hang); later ones are healthy.
  std::vector<std::int64_t> delayed_indexes;
  config.cold_start_delay_hook = [&](std::int64_t index) {
    delayed_indexes.push_back(index);
    return index == 0 ? sec(30) : 0;
  };
  Autoscaler scaler(cluster.get(), std::make_unique<ReactivePolicy>(), config);

  // A burst on the single-GPU fleet forces a scale-up decision at the
  // first tick.
  const auto requests = testkit::make_request_sequence(24, 3, 0, msec(50));
  for (const core::Request& req : requests) {
    cluster->simulator().schedule_at(req.arrival,
                                     [&, req] { cluster->engine().submit(req); });
  }
  scaler.start(requests.back().arrival);
  cluster->simulator().run();
  scaler.finalize();

  EXPECT_EQ(cluster->engine().pending(), 0u);
  EXPECT_EQ(cluster->engine().completions().size(), requests.size());
  EXPECT_GE(scaler.counters().gpus_added, 1);
  EXPECT_EQ(scaler.provisioning_count(), 0u);
  ASSERT_FALSE(delayed_indexes.empty());
  EXPECT_EQ(delayed_indexes[0], 0);

  // The stalled provisioning really held its join back: the batch's
  // healthy cold starts land at decision + cold_start, while the delayed
  // one (begun first, joining last) lands no earlier than decision +
  // cold_start + injected delay.
  const auto& steps = scaler.schedulable_timeline().steps();
  SimTime last_join = -1;
  double previous = 0;
  for (const auto& [when, value] : steps) {
    if (value > previous) last_join = when;
    previous = value;
  }
  ASSERT_GE(last_join, 0);
  EXPECT_GE(last_join, config.cold_start + sec(30));
}

TEST(AutoscalerChaosTest, GpuKilledMidRequestLeavesNoStrandedState) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).models(3).build();

  AutoscalerConfig config;
  config.evaluation_interval = sec(5);
  config.cold_start = sec(10);
  config.min_gpus = 2;
  config.max_gpus = 4;
  Autoscaler scaler(cluster.get(), std::make_unique<ReactivePolicy>(), config);

  const auto requests = testkit::make_request_sequence(30, 3, 0, msec(400));
  for (const core::Request& req : requests) {
    cluster->simulator().schedule_at(req.arrival,
                                     [&, req] { cluster->engine().submit(req); });
  }
  // Mid-run, kill whichever GPU is busy: its in-flight request fails,
  // its local queue rejoins the global queue, and the membership indexes
  // (engine, cache, autoscaler view) must all stay consistent.
  GpuId victim;
  cluster->simulator().schedule_at(sec(4), [&] {
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_FALSE(busy.empty());
    victim = busy[0];
    cluster->kill_gpu(victim);
  });
  scaler.start(requests.back().arrival);
  cluster->simulator().run();
  scaler.finalize();

  ASSERT_TRUE(victim.valid());
  EXPECT_EQ(cluster->engine().pending(), 0u);
  ASSERT_EQ(cluster->engine().failures().size(), 1u);
  EXPECT_TRUE(cluster->engine().failures()[0].failed);
  EXPECT_EQ(cluster->engine().failures()[0].gpu, victim);
  EXPECT_EQ(cluster->engine().completions().size(), requests.size() - 1);
  EXPECT_FALSE(cluster->cache().is_registered(victim));
  // No stranded pins on the survivors; the dead GPU never rejoins.
  for (const GpuId gpu : cluster->engine().idle_gpus()) {
    EXPECT_NE(gpu, victim);
    EXPECT_FALSE(cluster->cache().state(gpu).any_pinned());
  }
}

// ---------------------------------------------------------------------------
// Determinism guard: with the autoscaler disabled (or pinned min == max),
// the paper grid's completion stream is bit-identical to a plain run.
// ---------------------------------------------------------------------------

std::uint64_t completion_digest(const cluster::SchedulerEngine& engine) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  for (const auto& r : engine.completions()) {
    mix(static_cast<std::uint64_t>(r.id.value()));
    mix(static_cast<std::uint64_t>(r.gpu.value()));
    mix(static_cast<std::uint64_t>(r.arrival));
    mix(static_cast<std::uint64_t>(r.dispatched));
    mix(static_cast<std::uint64_t>(r.completed));
    mix((r.cache_hit ? 1u : 0u) | (r.false_miss ? 2u : 0u) |
        (r.via_local_queue ? 4u : 0u));
  }
  return hash;
}

enum class ScalerMode { kNone, kDisabled, kPinned };

std::uint64_t grid_cell_digest(core::PolicyName policy,
                               const trace::Workload& workload, ScalerMode mode) {
  cluster::ClusterConfig config;  // the paper's 3x4 testbed
  config.policy = policy;
  cluster::SimCluster cluster(config, workload.registry);

  std::unique_ptr<Autoscaler> scaler;
  if (mode != ScalerMode::kNone) {
    AutoscalerConfig scaler_config;
    scaler_config.enabled = mode != ScalerMode::kDisabled;
    // Pinned: evaluation ticks run, but min == max == fleet size means no
    // decision can ever change membership.
    scaler_config.min_gpus = 12;
    scaler_config.max_gpus = 12;
    scaler = std::make_unique<Autoscaler>(
        &cluster, std::make_unique<ReactivePolicy>(), scaler_config);
  }
  for (const core::Request& req : workload.requests) {
    cluster.simulator().schedule_at(
        req.arrival, [&cluster, req] { cluster.engine().submit(req); });
  }
  if (scaler) scaler->start(workload.requests.back().arrival);
  cluster.simulator().run();
  if (scaler) scaler->finalize();
  GFAAS_CHECK(cluster.engine().pending() == 0);
  return completion_digest(cluster.engine());
}

TEST(AutoscalerDeterminismTest, PaperGridBitIdenticalWithAutoscalerDisabled) {
  // Full paper window (6 min x 325 rpm), working set 15, all three
  // schedulers: a disabled autoscaler must leave no trace in the
  // completion stream, and even a ticking one pinned to min == max must
  // only read state, never perturb it.
  const trace::Workload workload = testkit::make_workload(15, 7, 6);
  for (core::PolicyName policy :
       {core::PolicyName::kLb, core::PolicyName::kLalb, core::PolicyName::kLalbO3}) {
    const std::uint64_t plain =
        grid_cell_digest(policy, workload, ScalerMode::kNone);
    EXPECT_EQ(plain, grid_cell_digest(policy, workload, ScalerMode::kDisabled))
        << core::policy_display_name(policy);
    EXPECT_EQ(plain, grid_cell_digest(policy, workload, ScalerMode::kPinned))
        << core::policy_display_name(policy);
  }
}

}  // namespace
}  // namespace gfaas::autoscale
