// Concurrent ingestion tests: the lock-free MPSC submission ring, the
// dedicated callback executor, the ConcurrentIngress drain protocol
// (backpressure, multi-producer exactly-once, survival of kill_gpu
// interleavings), and the proof that batched admission through
// Gateway::submit_batch makes the same decisions as sequential submit().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/realtime_cluster.h"
#include "common/rng.h"
#include "concurrent/callback_executor.h"
#include "concurrent/mpsc_queue.h"
#include "gateway/ingress.h"
#include "testing/builders.h"

namespace gfaas::gateway {
namespace {

using concurrent::BoundedMpscQueue;
using concurrent::CallbackExecutor;

// ---------------------------------------------------------------------------
// BoundedMpscQueue
// ---------------------------------------------------------------------------

TEST(MpscQueueTest, FifoSingleThread) {
  BoundedMpscQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) {
    int v = i;
    ASSERT_TRUE(queue.try_push(v));
  }
  int out = -1;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(MpscQueueTest, FullQueueRejectsAndKeepsValue) {
  BoundedMpscQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(queue.try_push(v));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.try_push(overflow));
  EXPECT_EQ(overflow, 99);  // caller keeps ownership on rejection
  EXPECT_EQ(queue.approx_size(), 4u);
}

TEST(MpscQueueTest, WraparoundReusesCellsAcrossLaps) {
  BoundedMpscQueue<int> queue(4);
  int expected = 0;
  for (int lap = 0; lap < 5; ++lap) {
    for (int i = 0; i < 4; ++i) {
      int v = lap * 4 + i;
      ASSERT_TRUE(queue.try_push(v));
    }
    std::vector<int> out;
    EXPECT_EQ(queue.drain(out), 4u);
    for (int v : out) EXPECT_EQ(v, expected++);
  }
  EXPECT_EQ(queue.approx_size(), 0u);
}

TEST(MpscQueueTest, ConcurrentProducersKeepPerProducerOrderAndTotals) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  // Encode (producer, sequence) so the consumer can verify both global
  // conservation and per-producer FIFO.
  BoundedMpscQueue<std::int64_t> queue(256);
  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        std::int64_t v = static_cast<std::int64_t>(p) * kPerProducer + i;
        while (!queue.try_push(v)) std::this_thread::yield();  // ring full
      }
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  std::int64_t popped = 0;
  start.store(true);
  while (popped < kProducers * kPerProducer) {
    std::int64_t v;
    if (!queue.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(v / kPerProducer);
    const int seq = static_cast<int>(v % kPerProducer);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    next_seq[p] = seq + 1;
    ++popped;
  }
  for (auto& t : producers) t.join();
  std::int64_t leftover;
  EXPECT_FALSE(queue.try_pop(leftover));
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

// ---------------------------------------------------------------------------
// CallbackExecutor
// ---------------------------------------------------------------------------

TEST(CallbackExecutorTest, RunsCallbacksInPostOrder) {
  std::vector<int> order;
  CallbackExecutor callbacks;
  for (int i = 0; i < 100; ++i) {
    callbacks.post([&order, i] { order.push_back(i); });
  }
  callbacks.drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(callbacks.executed(), 100u);
  EXPECT_EQ(callbacks.pending(), 0u);
}

TEST(CallbackExecutorTest, DrainWaitsForRunningCallback) {
  CallbackExecutor callbacks;
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    callbacks.post([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  callbacks.drain();
  EXPECT_EQ(done.load(), 8);
}

TEST(CallbackExecutorTest, DestructorRunsEverythingPosted) {
  std::atomic<int> ran{0};
  {
    CallbackExecutor callbacks;
    for (int i = 0; i < 50; ++i) {
      callbacks.post([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

// ---------------------------------------------------------------------------
// ConcurrentIngress
// ---------------------------------------------------------------------------

Submission make_submission(std::int64_t id, std::int64_t model,
                           ResultCallback done) {
  return Submission{testkit::make_request(id, model, /*arrival=*/0),
                    std::move(done)};
}

TEST(IngressTest, FullRingSurfacesBackpressureThenDrains) {
  // On a SimCluster nothing drains until the simulator runs, so a ring of
  // 4 must reject the 5th submission — backpressure reaches the producer
  // as `false`, not a block or a drop.
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  Gateway gateway(cluster.get());
  ConcurrentIngress ingress(&gateway, &cluster->executor(), /*capacity=*/4);

  std::atomic<int> completed{0};
  auto done = [&completed](const GatewayResult& result) {
    EXPECT_EQ(result.disposition, Disposition::kCompleted);
    completed.fetch_add(1);
  };
  for (std::int64_t id = 0; id < 4; ++id) {
    Submission cell = make_submission(id, id % 2, done);
    EXPECT_TRUE(ingress.try_submit(cell));
  }
  Submission overflow = make_submission(4, 0, done);
  EXPECT_FALSE(ingress.try_submit(overflow));
  EXPECT_TRUE(overflow.done != nullptr);  // rejected cell stays intact
  EXPECT_EQ(ingress.accepted(), 4u);
  EXPECT_EQ(ingress.rejected(), 1u);

  cluster->run_to_completion();
  EXPECT_EQ(completed.load(), 4);
  EXPECT_EQ(ingress.drained(), 4u);
  // The whole pre-run backlog arrived in one drain pass.
  EXPECT_EQ(ingress.drains(), 1u);
  EXPECT_EQ(ingress.max_batch(), 4u);

  // The freed ring accepts again and the cell completes.
  EXPECT_TRUE(ingress.try_submit(overflow));
  cluster->run_to_completion();
  EXPECT_EQ(completed.load(), 5);
}

TEST(IngestTest, ConcurrentProducersResolveExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  constexpr int kTotal = kProducers * kPerProducer;
  const auto config =
      testkit::ClusterBuilder().nodes(2).gpus_per_node(2).config();
  cluster::RealTimeCluster cluster(config, testkit::head_registry(3),
                                   /*time_scale=*/2000.0);
  GatewayConfig gconfig;
  gconfig.max_in_flight = kTotal;  // no shedding: every id must complete
  Gateway gateway(&cluster, gconfig);
  CallbackExecutor callbacks;
  gateway.set_callback_executor(&callbacks);
  ConcurrentIngress ingress(&gateway, &cluster.executor(), /*capacity=*/256);

  std::vector<std::atomic<int>> resolutions(kTotal);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t id = static_cast<std::int64_t>(p) * kPerProducer + i;
        Submission cell = make_submission(id, id % 3, [&, id](const GatewayResult& r) {
          EXPECT_EQ(r.disposition, Disposition::kCompleted);
          resolutions[static_cast<std::size_t>(id)].fetch_add(1);
        });
        while (!ingress.try_submit(cell)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  // Producers are quiescent: wait for the armed drains to hand everything
  // to the gateway, then for the engine to finish, then for the fan-out.
  while (ingress.drained() < ingress.accepted()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.run_to_completion();
  callbacks.drain();

  EXPECT_EQ(ingress.accepted(), static_cast<std::uint64_t>(kTotal));
  for (int id = 0; id < kTotal; ++id) {
    EXPECT_EQ(resolutions[static_cast<std::size_t>(id)].load(), 1)
        << "request " << id << " resolved wrong number of times";
  }
  EXPECT_EQ(gateway.counters().completed, kTotal);
  EXPECT_EQ(callbacks.executed(), static_cast<std::uint64_t>(kTotal));
}

TEST(IngestTest, ExactlyOnceUnderConcurrentSubmitAndKillGpu) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  constexpr int kTotal = kProducers * kPerProducer;
  const auto config =
      testkit::ClusterBuilder().nodes(2).gpus_per_node(2).config();
  cluster::RealTimeCluster cluster(config, testkit::head_registry(3),
                                   /*time_scale=*/2000.0);
  GatewayConfig gconfig;
  gconfig.max_in_flight = kTotal;
  gconfig.default_slo = 0;  // no deadlines: nothing expires, nothing sheds
  Gateway gateway(&cluster, gconfig);
  CallbackExecutor callbacks;
  gateway.set_callback_executor(&callbacks);
  ConcurrentIngress ingress(&gateway, &cluster.executor(), /*capacity=*/256);

  std::vector<std::atomic<int>> resolutions(kTotal);
  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t id = static_cast<std::int64_t>(p) * kPerProducer + i;
        Submission cell = make_submission(id, id % 3, [&, id](const GatewayResult& r) {
          if (r.disposition == Disposition::kCompleted) {
            completed.fetch_add(1);
          } else {
            EXPECT_EQ(r.disposition, Disposition::kFailed);
            failed.fetch_add(1);
          }
          resolutions[static_cast<std::size_t>(id)].fetch_add(1);
        });
        while (!ingress.try_submit(cell)) std::this_thread::yield();
      }
    });
  }
  // Kill a GPU while submissions race in: in-flight work on it fails,
  // everything else reroutes, and every callback still fires once. (The
  // delay is sim time; at time_scale 2000 this lands ~10ms of wall time
  // into the run, mid-burst.)
  cluster.executor().schedule_after(sec(20), [&] { cluster.kill_gpu(GpuId(0)); });
  for (auto& t : producers) t.join();
  while (ingress.drained() < ingress.accepted()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.run_to_completion();
  callbacks.drain();

  EXPECT_EQ(completed.load() + failed.load(), kTotal);
  for (int id = 0; id < kTotal; ++id) {
    EXPECT_EQ(resolutions[static_cast<std::size_t>(id)].load(), 1)
        << "request " << id << " resolved wrong number of times";
  }
  EXPECT_EQ(gateway.counters().completed + gateway.counters().failed, kTotal);
}

// ---------------------------------------------------------------------------
// Batched admission vs sequential submission
// ---------------------------------------------------------------------------

struct RunOutcome {
  std::map<std::int64_t, Disposition> dispositions;
  std::uint64_t completion_digest = 0;
  GatewayCounters counters;
};

std::uint64_t digest_completions(
    const std::vector<core::CompletionRecord>& records) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const auto& r : records) {
    mix(static_cast<std::uint64_t>(r.id.value()));
    mix(static_cast<std::uint64_t>(r.gpu.value()));
    mix(static_cast<std::uint64_t>(r.dispatched));
    mix(static_cast<std::uint64_t>(r.completed));
    mix(r.failed ? 1u : 0u);
  }
  return h;
}

// Replays `requests` through a gateway under contention (bounded window,
// finite SLO → real shed/queue decisions), either one submit() per
// request or one submit_batch() per same-arrival burst. Returns per-id
// dispositions plus a digest of the engine's completion stream.
RunOutcome run_gateway(const std::vector<core::Request>& requests,
                       bool batched) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.max_in_flight = 8;
  config.max_pending = 16;
  config.default_slo = sec(120);
  Gateway gateway(cluster.get(), config);

  RunOutcome outcome;
  auto callback_for = [&outcome](std::int64_t id) {
    return [&outcome, id](const GatewayResult& result) {
      const bool inserted =
          outcome.dispositions.emplace(id, result.disposition).second;
      EXPECT_TRUE(inserted) << "request " << id << " resolved twice";
    };
  };
  if (batched) {
    cluster->replay_batched(requests, [&](std::vector<core::Request> burst) {
      std::vector<Submission> cells;
      cells.reserve(burst.size());
      for (core::Request& request : burst) {
        const std::int64_t id = request.id.value();
        cells.push_back(Submission{std::move(request), callback_for(id)});
      }
      gateway.submit_batch(std::move(cells));
    });
  } else {
    cluster->replay(requests, [&](core::Request request) {
      const std::int64_t id = request.id.value();
      gateway.submit(std::move(request), callback_for(id));
    });
  }
  outcome.completion_digest = digest_completions(cluster->engine().completions());
  outcome.counters = gateway.counters();
  return outcome;
}

std::vector<core::Request> bursty_requests(std::uint64_t seed,
                                           std::int64_t count,
                                           std::int64_t models) {
  Rng rng(seed);
  std::vector<core::Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  SimTime arrival = 0;
  for (std::int64_t id = 0; id < count; ++id) {
    // Bursts of 1-8 share an arrival; gaps are short enough to keep the
    // admission window saturated (real shed-vs-queue decisions).
    if (id > 0 && rng() % 4 == 0) arrival += msec(50 + rng() % 400);
    requests.push_back(testkit::make_request(
        id, static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(models)),
        arrival));
  }
  return requests;
}

TEST(BatchedAdmissionTest, DecisionsMatchSequentialSubmission) {
  const auto requests = bursty_requests(/*seed=*/7, /*count=*/400, /*models=*/3);
  const RunOutcome sequential = run_gateway(requests, /*batched=*/false);
  const RunOutcome batched = run_gateway(requests, /*batched=*/true);

  ASSERT_EQ(sequential.dispositions.size(), requests.size());
  ASSERT_EQ(batched.dispositions.size(), requests.size());
  // Real contention: both kinds of outcome must actually occur or the
  // test proves nothing about the shed-vs-queue estimate.
  EXPECT_GT(sequential.counters.shed, 0);
  EXPECT_GT(sequential.counters.completed, 0);
  EXPECT_EQ(batched.dispositions, sequential.dispositions);
  EXPECT_EQ(batched.completion_digest, sequential.completion_digest);
  EXPECT_EQ(batched.counters.shed, sequential.counters.shed);
  EXPECT_EQ(batched.counters.admitted, sequential.counters.admitted);
}

TEST(BatchedAdmissionTest, RandomizedSeedsConserveDispositions) {
  for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
    const auto requests = bursty_requests(seed, /*count=*/250, /*models=*/3);
    const RunOutcome sequential = run_gateway(requests, /*batched=*/false);
    const RunOutcome batched = run_gateway(requests, /*batched=*/true);
    const auto total = [&](const RunOutcome& o) {
      return o.counters.completed + o.counters.shed + o.counters.expired +
             o.counters.failed;
    };
    EXPECT_EQ(total(sequential), static_cast<std::int64_t>(requests.size()));
    EXPECT_EQ(total(batched), static_cast<std::int64_t>(requests.size()));
    EXPECT_EQ(batched.dispositions, sequential.dispositions) << "seed " << seed;
    EXPECT_EQ(batched.completion_digest, sequential.completion_digest)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace gfaas::gateway
