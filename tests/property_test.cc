// Property-based sweeps (TEST_P) over scheduler x working set x seed:
// system-level invariants that must hold for ANY workload and policy —
// completeness, causality of timestamps, accounting consistency between
// scheduler decisions, cache statistics and GPU counters, memory safety,
// and bit-exact determinism.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/experiment.h"
#include "testing/builders.h"
#include "testing/matchers.h"
#include "trace/workload.h"

namespace gfaas::cluster {
namespace {

using Combo = std::tuple<core::PolicyName, std::size_t, std::uint64_t>;

class SchedulerInvariantTest : public ::testing::TestWithParam<Combo> {};

TEST_P(SchedulerInvariantTest, SystemInvariantsHold) {
  const auto [policy, working_set, seed] = GetParam();

  // 2-minute window: 650 requests keeps the sweep fast.
  const trace::Workload workload =
      testkit::make_workload(working_set, seed, /*window_minutes=*/2);

  ClusterConfig config;
  config.policy = policy;
  SimCluster cluster(config, workload.registry);
  cluster.engine().track_duplicates_of(workload.top_model);
  const SimTime makespan = cluster.replay(workload.requests);

  const auto& completions = cluster.engine().completions();

  // (1) Completeness: every submitted request completes exactly once.
  ASSERT_TRUE(testkit::all_completed_once(cluster.engine(), workload.requests.size()));

  // (2) Causality: arrival <= dispatched < completed <= makespan.
  std::int64_t misses = 0, false_misses = 0;
  for (const auto& r : completions) {
    EXPECT_TRUE(testkit::has_causal_timestamps(r));
    EXPECT_LE(r.completed, makespan);
    EXPECT_TRUE(r.gpu.valid());
    EXPECT_LT(r.gpu.value(), static_cast<std::int64_t>(cluster.gpu_count()));
    if (!r.cache_hit) ++misses;
    if (r.false_miss) ++false_misses;
    // A false miss is by definition a miss.
    if (r.false_miss) {
      EXPECT_FALSE(r.cache_hit);
    }
    // Local-queue requests are guaranteed hits (the model was pinned).
    if (r.via_local_queue) {
      EXPECT_TRUE(r.cache_hit);
    }
    // Minimum service time: at least the pure inference latency.
    const SimTime infer = cluster.oracle().infer_time(r.model, 32).value();
    EXPECT_GE(r.completed - r.dispatched, infer);
  }

  // (3) Accounting: every miss uploads exactly one model; evictions can
  // never exceed loads; the cache manager and engine agree.
  std::int64_t loads = 0, evictions = 0;
  for (std::size_t g = 0; g < cluster.gpu_count(); ++g) {
    loads += cluster.gpu(g).counters().loads;
    evictions += cluster.gpu(g).counters().evictions;
    // (4) Memory safety: accounting is consistent and within capacity.
    EXPECT_GE(cluster.gpu(g).free_memory(), 0);
    EXPECT_TRUE(cluster.gpu(g).allocator().check_invariants());
    // One process per resident model, none mid-load at quiescence.
    for (const auto& proc : cluster.gpu(g).processes()) {
      EXPECT_TRUE(proc.loaded);
      EXPECT_TRUE(cluster.cache().is_cached(GpuId(g), proc.model));
    }
  }
  EXPECT_EQ(loads, misses);
  EXPECT_EQ(cluster.cache().stats().misses, misses);
  EXPECT_EQ(cluster.cache().stats().hits,
            static_cast<std::int64_t>(completions.size()) - misses);
  EXPECT_EQ(cluster.cache().stats().evictions, evictions);
  EXPECT_LE(evictions, loads);
  EXPECT_EQ(cluster.engine().false_misses(), false_misses);
  EXPECT_LE(false_misses, misses);

  // (5) Duplicate bound: a model can be on at most every GPU.
  EXPECT_LE(cluster.engine().average_top_duplicates(makespan),
            static_cast<double>(cluster.gpu_count()));

  // (6) Work conservation: the makespan cannot be shorter than the total
  // inference work spread perfectly across all GPUs.
  SimTime total_infer = 0;
  for (const auto& r : completions) {
    total_infer += cluster.oracle().infer_time(r.model, 32).value();
  }
  EXPECT_GE(makespan,
            total_infer / static_cast<SimTime>(cluster.gpu_count()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerInvariantTest,
    ::testing::Combine(::testing::Values(core::PolicyName::kLb,
                                         core::PolicyName::kLalb,
                                         core::PolicyName::kLalbO3),
                       ::testing::Values<std::size_t>(15, 25, 35),
                       ::testing::Values<std::uint64_t>(7, 1234)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return core::policy_display_name(std::get<0>(info.param)) + "_ws" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

class DeterminismTest : public ::testing::TestWithParam<core::PolicyName> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalTimelines) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 25;
  wconfig.window_minutes = 1;
  auto workload = trace::build_standard_workload(wconfig);
  ASSERT_TRUE(workload.ok());

  auto run_once = [&] {
    ClusterConfig config;
    config.policy = GetParam();
    SimCluster cluster(config, workload->registry);
    cluster.replay(workload->requests);
    return cluster.engine().completions();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].gpu, b[i].gpu);
    EXPECT_EQ(a[i].dispatched, b[i].dispatched);
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].cache_hit, b[i].cache_hit);
    EXPECT_EQ(a[i].false_miss, b[i].false_miss);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DeterminismTest,
                         ::testing::Values(core::PolicyName::kLb,
                                           core::PolicyName::kLalb,
                                           core::PolicyName::kLalbO3),
                         [](const ::testing::TestParamInfo<core::PolicyName>& info) {
                           return core::policy_display_name(info.param);
                         });

class O3LimitMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(O3LimitMonotonicityTest, HigherLimitNeverLosesBadlyToLalb) {
  // Fig. 7's qualitative claim: raising the O3 limit improves (or at
  // least does not substantially worsen) latency and miss ratio at the
  // thrashing working set.
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 35;
  wconfig.window_minutes = 2;
  auto workload = trace::build_standard_workload(wconfig);
  ASSERT_TRUE(workload.ok());

  ClusterConfig base;
  base.policy = core::PolicyName::kLalb;
  const ExperimentResult lalb = run_experiment(base, *workload);

  ClusterConfig o3;
  o3.policy = core::PolicyName::kLalbO3;
  o3.o3_limit = GetParam();
  const ExperimentResult result = run_experiment(o3, *workload);
  EXPECT_LT(result.avg_latency_s, lalb.avg_latency_s * 1.25);
  EXPECT_LT(result.miss_ratio, lalb.miss_ratio * 1.25 + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Limits, O3LimitMonotonicityTest,
                         ::testing::Values(5, 15, 25, 45));

}  // namespace
}  // namespace gfaas::cluster
