// Tests for the live-telemetry layer: metric registry accuracy and
// thread-safety, span sampling determinism, exporter tick alignment
// across executors, the shared CSV dialect, and the digest guard that
// proves instrumentation is behavior-preserving.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "cluster/realtime.h"
#include "common/rng.h"
#include "gateway/gateway.h"
#include "sim/simulator.h"
#include "telemetry/csv.h"
#include "telemetry/exporter.h"
#include "telemetry/metric_registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_span.h"
#include "trace/workload.h"

namespace gfaas::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Histogram quantiles vs a sorted-vector oracle.
// ---------------------------------------------------------------------------

// Nearest-rank quantile of a sorted sample (the oracle the log-bucketed
// histogram approximates).
double oracle_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<std::int64_t>(sorted.size());
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n))));
  return sorted[static_cast<std::size_t>(rank - 1)];
}

void check_quantiles(const std::vector<double>& samples, const char* name) {
  Histogram hist;
  std::vector<double> clamped;
  clamped.reserve(samples.size());
  for (double x : samples) {
    hist.record(x);
    // The oracle sees what the histogram can represent: values outside
    // the bucket range clamp to the edges.
    clamped.push_back(std::min(std::max(x, 1e-6), 1e6));
  }
  ASSERT_EQ(hist.count(), static_cast<std::int64_t>(samples.size()));
  for (double q : {0.50, 0.90, 0.95, 0.99}) {
    const double oracle = oracle_quantile(clamped, q);
    const double approx = hist.quantile(q);
    // 50 bins/decade gives ~4.7% bucket width; interpolation keeps the
    // error well inside one bucket.
    EXPECT_NEAR(approx, oracle, 0.08 * oracle)
        << name << " q=" << q << " oracle=" << oracle << " approx=" << approx;
  }
}

TEST(HistogramTest, UniformQuantilesMatchOracle) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.uniform(0.001, 100.0));
  check_quantiles(samples, "uniform");
}

TEST(HistogramTest, ExponentialQuantilesMatchOracle) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.exponential(0.5));
  check_quantiles(samples, "exponential");
}

TEST(HistogramTest, LognormalQuantilesMatchOracle) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(std::exp(rng.normal(0.0, 1.5)));
  check_quantiles(samples, "lognormal");
}

TEST(HistogramTest, ClampsOutOfRangeToEdgeBuckets) {
  Histogram hist;
  hist.record(1e-12);
  hist.record(1e12);
  EXPECT_EQ(hist.count(), 2);
  EXPECT_GE(hist.quantile(0.01), 0.0);
  EXPECT_LE(hist.quantile(0.99), 1e6);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.quantile(0.99), 0.0);
}

// ---------------------------------------------------------------------------
// Concurrent shard aggregation (the TSan target: 8 recording threads
// against one registry, reads racing the writes).
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, ConcurrentRecordingAggregatesExactly) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Registration races on purpose: lookup-or-create is mutex-guarded
      // and every thread must resolve the same instruments.
      Counter* counter = registry.counter("test.events");
      Histogram* hist = registry.histogram("test.latency");
      Gauge* gauge = registry.gauge("test.level");
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        counter->add();
        hist->record(0.001 * static_cast<double>(1 + (i % 100)));
        if ((i & 1023) == 0) gauge->set(static_cast<double>(t));
      }
    });
  }
  // Snapshot while the writers are live: values are racy-but-coherent
  // (relaxed per-cell), and TSan must stay quiet.
  (void)registry.snapshot();
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("test.events")->value(), kThreads * kPerThread);
  EXPECT_EQ(registry.histogram("test.latency")->count(), kThreads * kPerThread);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("test.events"), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(snap.value("test.latency.count"),
            static_cast<double>(kThreads * kPerThread));
  EXPECT_TRUE(snap.has("test.level"));
  EXPECT_FALSE(snap.has("test.missing"));
  EXPECT_EQ(snap.value("test.missing", -1.0), -1.0);
}

// ---------------------------------------------------------------------------
// Span sampling determinism and ring-buffer bounds.
// ---------------------------------------------------------------------------

TEST(SpanRecorderTest, SamplingIsDeterministicUnderPinnedSeed) {
  SpanRecorderConfig config;
  config.sample_rate = 0.25;
  config.seed = 42;
  const SpanRecorder a(config);
  const SpanRecorder b(config);
  int sampled = 0;
  for (std::int64_t id = 0; id < 10000; ++id) {
    EXPECT_EQ(a.sampled(id), b.sampled(id)) << "id " << id;
    if (a.sampled(id)) ++sampled;
  }
  // The decision is a pure hash of (id, seed): the realized fraction
  // must sit near the configured rate.
  EXPECT_GT(sampled, 2200);
  EXPECT_LT(sampled, 2800);

  // A different seed samples a different id subset.
  config.seed = 43;
  const SpanRecorder c(config);
  int differs = 0;
  for (std::int64_t id = 0; id < 10000; ++id) {
    if (a.sampled(id) != c.sampled(id)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(SpanRecorderTest, IdenticalRunsProduceIdenticalSnapshots) {
  SpanRecorderConfig config;
  config.capacity = 64;
  config.sample_rate = 0.5;
  config.seed = 7;
  SpanRecorder a(config);
  SpanRecorder b(config);
  for (std::int64_t id = 0; id < 200; ++id) {
    a.record(id, SpanEvent::kSubmit, usec(id), -1, id);
    b.record(id, SpanEvent::kSubmit, usec(id), -1, id);
  }
  const std::vector<SpanRecord> sa = a.snapshot();
  const std::vector<SpanRecord> sb = b.snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].request, sb[i].request);
    EXPECT_EQ(sa[i].at, sb[i].at);
    EXPECT_EQ(sa[i].event, sb[i].event);
    EXPECT_EQ(sa[i].detail, sb[i].detail);
  }
}

TEST(SpanRecorderTest, RingOverwritesOldestAndStaysBounded) {
  SpanRecorderConfig config;
  config.capacity = 8;
  config.sample_rate = 1.0;  // record everything
  SpanRecorder recorder(config);
  for (std::int64_t id = 0; id < 20; ++id) {
    recorder.record(id, SpanEvent::kSubmit, usec(id));
  }
  EXPECT_EQ(recorder.recorded(), 20);
  EXPECT_EQ(recorder.overwritten(), 12);
  const std::vector<SpanRecord> spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].request, static_cast<std::int64_t>(12 + i))
        << "oldest-first order";
  }
}

TEST(SpanRecorderTest, SinkSeesEverySampledEvent) {
  SpanRecorderConfig config;
  config.sample_rate = 0.25;
  config.seed = 5;
  SpanRecorder recorder(config);
  std::vector<std::int64_t> seen;
  recorder.set_sink([&seen](const SpanRecord& span) {
    seen.push_back(span.request);
  });
  std::vector<std::int64_t> expected;
  for (std::int64_t id = 0; id < 1000; ++id) {
    recorder.record(id, SpanEvent::kComplete, usec(id));
    if (recorder.sampled(id)) expected.push_back(id);
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(recorder.recorded(), static_cast<std::int64_t>(expected.size()));
}

// ---------------------------------------------------------------------------
// Exporter tick alignment: identical nominal rows on the simulator and
// the wall-clock executor.
// ---------------------------------------------------------------------------

// Drives one exporter run: a counter bumped before the start row, a
// second bump between two ticks, horizon = 4 intervals. Returns the
// full CSV (timestamps + values).
std::string run_export(sim::Executor& executor, bool realtime) {
  Telemetry telemetry;
  Counter* events = telemetry.metrics().counter("run.events");
  events->add(3);
  TelemetryExporterConfig config;
  config.interval = msec(50);
  config.label = "align";
  TelemetryExporter exporter(&executor, &telemetry, config);
  const SimTime horizon = msec(200);
  // The mid-run bump lands between the t=100ms and t=150ms rows (well
  // clear of tick boundaries, so sim and realtime agree on which rows
  // see it).
  executor.schedule_after(msec(125), [events] { events->add(4); });
  exporter.start(horizon);
  if (realtime) {
    static_cast<cluster::RealTimeExecutor&>(executor).drain();
  } else {
    static_cast<sim::Simulator&>(executor).run();
  }
  exporter.finish();
  // Rows: snapped start (t=0) + ticks at 50/100/150/200ms + finish row
  // at the next nominal boundary (250ms).
  EXPECT_EQ(exporter.series().size(), 6u);
  EXPECT_EQ(exporter.series().front().at, 0);
  EXPECT_EQ(exporter.last().at, msec(250));
  EXPECT_EQ(exporter.series()[2].value("run.events"), 3.0);
  EXPECT_EQ(exporter.series()[3].value("run.events"), 7.0);
  return exporter.to_csv();
}

TEST(TelemetryExporterTest, SimAndRealtimeRowsAreByteIdentical) {
  sim::Simulator simulator;
  const std::string sim_csv = run_export(simulator, /*realtime=*/false);

  cluster::RealTimeExecutor wall(/*time_scale=*/1.0);
  const std::string wall_csv = run_export(wall, /*realtime=*/true);

  // Nominal stamping + grid-snapped start: the two series agree to the
  // byte even though the wall-clock ticks fired with real jitter.
  EXPECT_EQ(sim_csv, wall_csv);
}

TEST(TelemetryExporterTest, JsonlStreamsOneLinePerRow) {
  sim::Simulator simulator;
  Telemetry telemetry;
  telemetry.metrics().counter("j.count")->add(2);
  std::ostringstream jsonl;
  TelemetryExporterConfig config;
  config.interval = sec(1);
  config.label = "jsonl \"quoted\"";
  config.jsonl = &jsonl;
  TelemetryExporter exporter(&simulator, &telemetry, config);
  exporter.start(sec(2));
  simulator.run();
  exporter.finish();
  const std::string text = jsonl.str();
  // start + 2 ticks + finish = 4 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("\"run\":\"jsonl \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(text.find("\"j.count\":2"), std::string::npos);
}

TEST(TelemetryExporterTest, ProbesRunAtEveryTick) {
  sim::Simulator simulator;
  Telemetry telemetry;
  int probe_runs = 0;
  telemetry.add_probe([&probe_runs](MetricRegistry& registry) {
    ++probe_runs;
    registry.gauge("probe.runs")->set(static_cast<double>(probe_runs));
  });
  TelemetryExporterConfig config;
  config.interval = sec(5);
  TelemetryExporter exporter(&simulator, &telemetry, config);
  exporter.start(sec(10));
  simulator.run();
  exporter.finish();
  ASSERT_EQ(exporter.series().size(), 4u);
  EXPECT_EQ(probe_runs, 4);
  EXPECT_EQ(exporter.last().value("probe.runs"), 4.0);
}

// ---------------------------------------------------------------------------
// Shared CSV dialect.
// ---------------------------------------------------------------------------

TEST(CsvWriterTest, EscapesRfc4180) {
  CsvWriter csv({"name", "note"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"quo\"te", "line\nbreak"});
  EXPECT_EQ(csv.str(),
            "name,note\n"
            "plain,\"with,comma\"\n"
            "\"quo\"\"te\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, FieldRendersDoublesCompactly) {
  EXPECT_EQ(CsvWriter::field(2.0), "2");
  EXPECT_EQ(CsvWriter::field(0.25), "0.25");
  EXPECT_EQ(CsvWriter::field(1.0 / 3.0), "0.3333333333");
}

// ---------------------------------------------------------------------------
// Digest guard: one seed-grid cell, batched through the gateway, with
// and without telemetry attached — every reported metric and the full
// completion-record digest must match exactly.
// ---------------------------------------------------------------------------

std::uint64_t completion_digest(const std::vector<core::CompletionRecord>& records) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  for (const auto& r : records) {
    mix(static_cast<std::uint64_t>(r.id.value()));
    mix(static_cast<std::uint64_t>(r.gpu.value()));
    mix(static_cast<std::uint64_t>(r.arrival));
    mix(static_cast<std::uint64_t>(r.dispatched));
    mix(static_cast<std::uint64_t>(r.completed));
    mix((r.cache_hit ? 1u : 0u) | (r.false_miss ? 2u : 0u) |
        (r.via_local_queue ? 4u : 0u));
  }
  return hash;
}

cluster::BatchIngestFactory digest_ingest(bool with_telemetry) {
  return [with_telemetry](cluster::ElasticCluster& cluster) {
    gateway::GatewayConfig config;
    config.max_in_flight = std::numeric_limits<std::size_t>::max();
    config.default_slo = 0;
    auto gw = std::make_shared<gateway::Gateway>(&cluster, config);
    std::shared_ptr<Telemetry> tel;
    if (with_telemetry) {
      tel = std::make_shared<Telemetry>();
      gw->set_telemetry(tel.get());
    }
    return [gw, tel](std::vector<core::Request> burst) {
      std::vector<gateway::Submission> cells;
      cells.reserve(burst.size());
      for (core::Request& request : burst) {
        cells.push_back(gateway::Submission{
            std::move(request), [](const gateway::GatewayResult&) {}});
      }
      gw->submit_batch(std::move(cells));
    };
  };
}

TEST(TelemetryDigestTest, EnabledTelemetryIsByteIdentical) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 15;
  wconfig.seed = 7;
  auto workload = trace::build_standard_workload(wconfig, /*trace_seed=*/42);
  ASSERT_TRUE(workload.ok()) << workload.status().to_string();
  cluster::ClusterConfig config;
  config.policy = core::PolicyName::kLalbO3;
  config.o3_limit = 25;

  std::vector<core::CompletionRecord> plain_records;
  const auto plain = cluster::run_experiment_batched(
      config, *workload, &plain_records, digest_ingest(/*with_telemetry=*/false));
  std::vector<core::CompletionRecord> instr_records;
  const auto instr = cluster::run_experiment_batched(
      config, *workload, &instr_records, digest_ingest(/*with_telemetry=*/true));

  // Exact equality, not tolerance: telemetry must be invisible.
  EXPECT_EQ(plain.requests, instr.requests);
  EXPECT_EQ(plain.avg_latency_s, instr.avg_latency_s);
  EXPECT_EQ(plain.p99_latency_s, instr.p99_latency_s);
  EXPECT_EQ(plain.miss_ratio, instr.miss_ratio);
  EXPECT_EQ(plain.false_miss_ratio, instr.false_miss_ratio);
  EXPECT_EQ(plain.sm_utilization, instr.sm_utilization);
  EXPECT_EQ(completion_digest(plain_records), completion_digest(instr_records));
}

// ---------------------------------------------------------------------------
// End-to-end instrumentation: a small simulated run must populate the
// gateway/engine metric families consistently.
// ---------------------------------------------------------------------------

TEST(TelemetryIntegrationTest, InstrumentedRunPopulatesMetricFamilies) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 15;
  wconfig.seed = 7;
  auto workload = trace::build_standard_workload(wconfig, /*trace_seed=*/42);
  ASSERT_TRUE(workload.ok());

  cluster::SimCluster cluster(cluster::ClusterConfig{}, workload->registry);
  gateway::GatewayConfig gconfig;
  gconfig.max_in_flight = std::numeric_limits<std::size_t>::max();
  gconfig.default_slo = 0;
  gateway::Gateway gateway(&cluster, gconfig);
  Telemetry telemetry;
  gateway.set_telemetry(&telemetry);
  cluster.engine().set_telemetry(&telemetry);
  TelemetryExporterConfig econfig;
  econfig.interval = sec(10);
  TelemetryExporter exporter(&cluster.executor(), &telemetry, econfig);

  SimTime horizon = 0;
  std::int64_t completions = 0;
  for (const core::Request& request : workload->requests) {
    horizon = std::max(horizon, request.arrival);
    core::Request copy = request;
    cluster.executor().schedule_after(request.arrival, [&gateway, copy,
                                                       &completions]() mutable {
      gateway.submit(std::move(copy),
                     [&completions](const gateway::GatewayResult&) {
                       ++completions;
                     });
    });
  }
  exporter.start(horizon);
  cluster.run_to_completion();
  exporter.finish();

  const MetricsSnapshot& snap = exporter.last();
  const auto total = static_cast<double>(workload->requests.size());
  EXPECT_EQ(snap.value("gateway.submitted"), total);
  EXPECT_EQ(snap.value("gateway.admitted"), total);
  EXPECT_EQ(snap.value("gateway.completed"), total);
  EXPECT_EQ(snap.value("gateway.completed"), static_cast<double>(completions));
  EXPECT_EQ(snap.value("engine.dispatches"), total);
  EXPECT_EQ(snap.value("engine.completions"), total);
  EXPECT_EQ(snap.value("gateway.latency_s.count"), total);
  EXPECT_GT(snap.value("gateway.latency_s.p50"), 0.0);
  EXPECT_GT(snap.value("engine.execution_time_us"), 0.0);
  EXPECT_GT(snap.value("cache.hit_ratio"), 0.0);
  // Sampled span ring holds a consistent request lifecycle: every
  // sampled id opens with kSubmit at its arrival.
  const SpanRecorder& spans = telemetry.spans();
  EXPECT_GT(spans.recorded(), 0);
  for (const SpanRecord& span : spans.snapshot()) {
    EXPECT_TRUE(spans.sampled(span.request));
  }
}

}  // namespace
}  // namespace gfaas::telemetry
